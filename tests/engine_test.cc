// Engine facade tests: the streaming serving path (Run) must reproduce the
// direct interpreter and the legacy materializing executor byte for byte,
// for every storage model, across batch sizes and thread budgets; Explain /
// ExplainAnalyze must expose the compiled plan and its runtime counters.
#include <gtest/gtest.h>

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "workload/dblp.h"
#include "workload/xmark.h"
#include "xquery/interp.h"
#include "xquery/parser.h"

namespace uload {
namespace {

constexpr const char* kBib =
    "<bib>"
    "<book><title>Data on the Web</title><year>1999</year>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><title>The Syntactic Web</title><year>2002</year>"
    "<author>Tim</author></book>"
    "<phdthesis><title>XAMs</title><year>2007</year>"
    "<author>Arion</author></phdthesis>"
    "</bib>";

struct ModelSpec {
  const char* name;
  std::function<std::vector<NamedXam>(const PathSummary&)> build;
};

std::vector<ModelSpec> AllModels() {
  return {
      {"edge", [](const PathSummary&) { return EdgeModel(); }},
      {"universal", [](const PathSummary& s) { return UniversalModel(s); }},
      {"node_table", [](const PathSummary&) { return NodeTableModel(); }},
      {"structural_id",
       [](const PathSummary&) { return StructuralIdModel(); }},
      {"tag_partitioned",
       [](const PathSummary& s) { return TagPartitionedModel(s); }},
      {"path_partitioned",
       [](const PathSummary& s) { return PathPartitionedModel(s); }},
  };
}

std::string DirectResult(const std::string& query, const Document& doc) {
  auto ast = ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto direct = EvaluateQueryDirect(**ast, doc);
  EXPECT_TRUE(direct.ok()) << direct.status().ToString();
  return direct.ok() ? *direct : std::string();
}

// Runs every query over every storage model at every (batch size, thread
// budget) combination; whenever the model can answer the query, the
// streaming engine, the legacy materializing executor, and the direct
// interpreter must agree byte for byte. Returns the number of (model,
// query) pairs the models could answer.
int CheckDifferential(const std::function<Document()>& make_doc,
                      const std::vector<std::string>& queries) {
  const size_t kBatchSizes[] = {1, 1024};
  const size_t kThreadBudgets[] = {1, 4};
  int covered = 0;
  for (const ModelSpec& m : AllModels()) {
    for (size_t batch : kBatchSizes) {
      for (size_t threads : kThreadBudgets) {
        Engine::Options o;
        o.batch_size = batch;
        o.thread_budget = threads;
        Engine engine(make_doc(), o);
        auto st = engine.InstallModel(m.build(engine.summary()));
        EXPECT_TRUE(st.ok()) << m.name << ": " << st.ToString();
        if (!st.ok()) continue;
        for (const std::string& q : queries) {
          std::string where = std::string(m.name) + " batch=" +
                              std::to_string(batch) + " threads=" +
                              std::to_string(threads) + " query: " + q;
          auto run = engine.Run(q);
          if (!run.ok()) {
            // The model has no equivalent rewriting for this pattern; that
            // must surface as NotFound, never as a wrong answer.
            EXPECT_EQ(run.status().code(), StatusCode::kNotFound) << where;
            continue;
          }
          if (batch == kBatchSizes[0] && threads == kThreadBudgets[0]) {
            ++covered;
          }
          // The refactor's differential: the streaming engine must agree
          // with the legacy materializing executor byte for byte, always.
          QueryRewriter qr(&engine.summary(), &engine.catalog());
          auto r = qr.Rewrite(q);
          EXPECT_TRUE(r.ok()) << where;
          if (!r.ok()) continue;
          auto legacy = qr.ExecuteMaterialized(*r, &engine.document());
          EXPECT_TRUE(legacy.ok()) << where;
          if (!legacy.ok()) continue;
          EXPECT_EQ(*run, *legacy) << where;
          // End-to-end correctness vs the direct interpreter. Where the
          // *legacy* executor already disagrees with the interpreter the
          // gap predates this engine (a rewriting defect over that model,
          // e.g. StructuralIdModel loses the tag restriction on some XMark
          // patterns) — record it without masking execution-layer bugs.
          std::string direct = DirectResult(q, engine.document());
          if (*legacy == direct) {
            EXPECT_EQ(*run, direct) << where;
          } else {
            std::cerr << "known rewriter divergence (legacy != direct): "
                      << where << "\n";
          }
        }
      }
    }
  }
  return covered;
}

TEST(EngineDifferentialTest, BibCorpusAcrossAllModels) {
  auto make_doc = [] {
    auto d = Document::Parse(kBib);
    EXPECT_TRUE(d.ok());
    return std::move(d).value();
  };
  std::vector<std::string> queries = {
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>",
      "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
      "return <a>{$x/author/text()}</a>",
      "for $x in doc(\"bib\")//phdthesis return <t>{$x/title/text()}</t>",
  };
  int covered = CheckDifferential(make_doc, queries);
  // The partitioned native stores answer the whole corpus.
  EXPECT_GE(covered, 6) << "expected at least the tag- and path-partitioned "
                           "stores to cover all queries";
}

TEST(EngineDifferentialTest, DblpCorpusAcrossAllModels) {
  auto make_doc = [] {
    DblpOptions o;
    o.records = 80;
    return GenerateDblp(o);
  };
  std::vector<std::string> queries = {
      "for $x in doc(\"dblp\")//article return <t>{$x/title/text()}</t>",
      "for $x in doc(\"dblp\")//inproceedings where $x/year = \"2000\" "
      "return <a>{$x/author/text()}</a>",
  };
  int covered = CheckDifferential(make_doc, queries);
  EXPECT_GE(covered, 4);
}

TEST(EngineDifferentialTest, XMarkCorpusAcrossAllModels) {
  auto make_doc = [] { return GenerateXMark(XMarkScale(0.02)); };
  std::vector<std::string> queries = {
      "for $x in doc(\"x\")//people/person return <p>{$x/name/text()}</p>",
      "for $x in doc(\"x\")//closed_auction where $x/price > 100 "
      "return <p>{$x/price/text()}</p>",
  };
  int covered = CheckDifferential(make_doc, queries);
  EXPECT_GE(covered, 4);
}

// Tracks the known rewriter divergence that CheckDifferential above logs to
// stderr ("known rewriter divergence (legacy != direct)"): over
// StructuralIdModel, a two-step path like //people/person loses the tag
// restriction of an inner step, so a non-person child of <people> leaks
// into the result. The gap is in the rewriting (both the legacy
// materializing executor and the streaming engine reproduce it faithfully,
// and the plan verifier proves the plan schema/order-sound — the plan is
// well-formed, it is just not equivalent to the query over this model).
// Remove DISABLED_ once the rewriter keeps the tag formula when embedding
// inner path steps into sid_main.
TEST(EngineKnownDivergence, DISABLED_StructuralIdModelDropsTagRestriction) {
  // Smallest XMark instance the generator emits; the person records carry
  // name children, and other entities (items, auctions) carry name-tagged
  // descendants too — those leak once the person restriction is dropped.
  Engine engine(GenerateXMark(XMarkScale(0.02)));
  ASSERT_TRUE(engine.InstallModel(StructuralIdModel()).ok());
  const std::string q =
      "for $x in doc(\"x\")//people/person return <p>{$x/name/text()}</p>";
  auto run = engine.Run(q);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Direct interpretation returns only the person names; the rewritten
  // plan surfaces extra name-tagged nodes.
  EXPECT_EQ(*run, DirectResult(q, engine.document()));
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = Document::Parse(kBib);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    engine_ = std::make_unique<Engine>(std::move(d).value());
    auto st = engine_->InstallModel(TagPartitionedModel(engine_->summary()));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, ExplainAnalyzeReportsPerOperatorMetrics) {
  const std::string q =
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>";
  auto ex = engine_->ExplainAnalyze(q);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_EQ(ex->result, DirectResult(q, engine_->document()));
  // The analyzed plan carries runtime counters for every operator.
  EXPECT_NE(ex->physical.find("tuples="), std::string::npos) << ex->physical;
  EXPECT_NE(ex->physical.find("batches="), std::string::npos) << ex->physical;
  EXPECT_FALSE(engine_->exec_context().metrics().empty());
  EXPECT_GT(engine_->exec_context().total_tuples(), 0);
  // The logical plan is the rewriter's combined plan.
  EXPECT_NE(ex->logical.find("Retype"), std::string::npos) << ex->logical;
}

TEST_F(EngineTest, ServingPathStreamsWithoutEvaluatorFallback) {
  // The acceptance bar for the streaming refactor: over a native store,
  // the compiled serving plan must not contain any operator that fell back
  // to the materializing evaluator.
  auto ex = engine_->Explain(
      "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
      "return <a>{$x/author/text()}</a>");
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_EQ(ex->physical.find("(materialized)"), std::string::npos)
      << ex->physical;
}

TEST_F(EngineTest, MetricsSlotsDoNotGrowAcrossQueries) {
  const std::string q =
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>";
  ASSERT_TRUE(engine_->Run(q).ok());
  size_t slots = engine_->exec_context().metrics().size();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine_->Run(q).ok());
  EXPECT_EQ(engine_->exec_context().metrics().size(), slots);
}

TEST_F(EngineTest, ConstantQueryRunsThroughUnitPlan) {
  // A query touching no data routes through the same plan builder: the
  // template runs over the unit relation.
  const std::string q = "<greeting><hello></hello></greeting>";
  auto ex = engine_->ExplainAnalyze(q);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_EQ(ex->result, DirectResult(q, engine_->document()));
  EXPECT_NE(ex->logical.find("Unit"), std::string::npos) << ex->logical;
  EXPECT_NE(ex->physical.find("Unit_phi"), std::string::npos) << ex->physical;
}

}  // namespace
}  // namespace uload
