// Engine facade tests: the streaming serving path (Run) must reproduce the
// direct interpreter and the legacy materializing executor byte for byte,
// for every storage model, across batch sizes and thread budgets; Explain /
// ExplainAnalyze must expose the compiled plan and its runtime counters.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "workload/dblp.h"
#include "workload/xmark.h"
#include "xquery/interp.h"
#include "xquery/parser.h"

namespace uload {
namespace {

constexpr const char* kBib =
    "<bib>"
    "<book><title>Data on the Web</title><year>1999</year>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><title>The Syntactic Web</title><year>2002</year>"
    "<author>Tim</author></book>"
    "<phdthesis><title>XAMs</title><year>2007</year>"
    "<author>Arion</author></phdthesis>"
    "</bib>";

struct ModelSpec {
  const char* name;
  std::function<std::vector<NamedXam>(const PathSummary&)> build;
};

std::vector<ModelSpec> AllModels() {
  return {
      {"edge", [](const PathSummary&) { return EdgeModel(); }},
      {"universal", [](const PathSummary& s) { return UniversalModel(s); }},
      {"node_table", [](const PathSummary&) { return NodeTableModel(); }},
      {"structural_id",
       [](const PathSummary&) { return StructuralIdModel(); }},
      {"tag_partitioned",
       [](const PathSummary& s) { return TagPartitionedModel(s); }},
      {"path_partitioned",
       [](const PathSummary& s) { return PathPartitionedModel(s); }},
  };
}

std::string DirectResult(const std::string& query, const Document& doc) {
  auto ast = ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto direct = EvaluateQueryDirect(**ast, doc);
  EXPECT_TRUE(direct.ok()) << direct.status().ToString();
  return direct.ok() ? *direct : std::string();
}

// Runs every query over every storage model at every (batch size, thread
// budget) combination; whenever the model can answer the query, the
// streaming engine, the legacy materializing executor, and the direct
// interpreter must agree byte for byte. Returns the number of (model,
// query) pairs the models could answer.
int CheckDifferential(const std::function<Document()>& make_doc,
                      const std::vector<std::string>& queries) {
  const size_t kBatchSizes[] = {1, 1024};
  const size_t kThreadBudgets[] = {1, 4};
  int covered = 0;
  for (const ModelSpec& m : AllModels()) {
    for (size_t batch : kBatchSizes) {
      for (size_t threads : kThreadBudgets) {
        Engine::Options o;
        o.batch_size = batch;
        o.thread_budget = threads;
        Engine engine(make_doc(), o);
        auto st = engine.InstallModel(m.build(engine.summary()));
        EXPECT_TRUE(st.ok()) << m.name << ": " << st.ToString();
        if (!st.ok()) continue;
        for (const std::string& q : queries) {
          std::string where = std::string(m.name) + " batch=" +
                              std::to_string(batch) + " threads=" +
                              std::to_string(threads) + " query: " + q;
          auto run = engine.Run(q);
          if (!run.ok()) {
            // The model has no equivalent rewriting for this pattern; that
            // must surface as NotFound, never as a wrong answer.
            EXPECT_EQ(run.status().code(), StatusCode::kNotFound) << where;
            continue;
          }
          if (batch == kBatchSizes[0] && threads == kThreadBudgets[0]) {
            ++covered;
          }
          // The refactor's differential: the streaming engine must agree
          // with the legacy materializing executor byte for byte, always.
          QueryRewriter qr(&engine.summary(), &engine.catalog());
          auto r = qr.Rewrite(q);
          EXPECT_TRUE(r.ok()) << where;
          if (!r.ok()) continue;
          auto legacy = qr.ExecuteMaterialized(*r, &engine.document());
          EXPECT_TRUE(legacy.ok()) << where;
          if (!legacy.ok()) continue;
          EXPECT_EQ(*run, *legacy) << where;
          // End-to-end correctness vs the direct interpreter. Where the
          // *legacy* executor already disagrees with the interpreter the
          // gap predates this engine (a rewriting defect over that model,
          // e.g. StructuralIdModel loses the tag restriction on some XMark
          // patterns) — record it without masking execution-layer bugs.
          std::string direct = DirectResult(q, engine.document());
          if (*legacy == direct) {
            EXPECT_EQ(*run, direct) << where;
          } else {
            std::cerr << "known rewriter divergence (legacy != direct): "
                      << where << "\n";
          }
        }
      }
    }
  }
  return covered;
}

TEST(EngineDifferentialTest, BibCorpusAcrossAllModels) {
  auto make_doc = [] {
    auto d = Document::Parse(kBib);
    EXPECT_TRUE(d.ok());
    return std::move(d).value();
  };
  std::vector<std::string> queries = {
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>",
      "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
      "return <a>{$x/author/text()}</a>",
      "for $x in doc(\"bib\")//phdthesis return <t>{$x/title/text()}</t>",
  };
  int covered = CheckDifferential(make_doc, queries);
  // The partitioned native stores answer the whole corpus.
  EXPECT_GE(covered, 6) << "expected at least the tag- and path-partitioned "
                           "stores to cover all queries";
}

TEST(EngineDifferentialTest, DblpCorpusAcrossAllModels) {
  auto make_doc = [] {
    DblpOptions o;
    o.records = 80;
    return GenerateDblp(o);
  };
  std::vector<std::string> queries = {
      "for $x in doc(\"dblp\")//article return <t>{$x/title/text()}</t>",
      "for $x in doc(\"dblp\")//inproceedings where $x/year = \"2000\" "
      "return <a>{$x/author/text()}</a>",
  };
  int covered = CheckDifferential(make_doc, queries);
  EXPECT_GE(covered, 4);
}

TEST(EngineDifferentialTest, XMarkCorpusAcrossAllModels) {
  auto make_doc = [] { return GenerateXMark(XMarkScale(0.02)); };
  std::vector<std::string> queries = {
      "for $x in doc(\"x\")//people/person return <p>{$x/name/text()}</p>",
      "for $x in doc(\"x\")//closed_auction where $x/price > 100 "
      "return <p>{$x/price/text()}</p>",
  };
  int covered = CheckDifferential(make_doc, queries);
  EXPECT_GE(covered, 4);
}

// Regression test for a rewriter divergence over StructuralIdModel: the
// all-wildcard sid stores admitted a candidate pattern with no tag
// restriction at all, and the equivalence check wrongly accepted it because
// canonical-model enumeration dropped every embedding whose *optional*
// subtree (the navigated name node) had no summary placement — elements
// without name descendants were invisible to the containment check, so
// e.g. an open_auction leaked into //people/person as an empty <p></p>.
// Fixed twofold: the canonical model/satisfiability/annotation enumerators
// map unembeddable optional subtrees to ⊥ instead of abandoning the
// embedding (src/containment/), and the rewriter compensates unenforced
// query label restrictions onto stored tag columns (CompensateTags in
// src/rewrite/rewriter.cc), which is what makes a correct sid_main-based
// rewriting exist for this query.
TEST(EngineKnownDivergence, StructuralIdModelDropsTagRestriction) {
  // Smallest XMark instance the generator emits; the person records carry
  // name children, and other entities (items, auctions) carry name-tagged
  // descendants too — those leak once the person restriction is dropped.
  Engine engine(GenerateXMark(XMarkScale(0.02)));
  ASSERT_TRUE(engine.InstallModel(StructuralIdModel()).ok());
  const std::string q =
      "for $x in doc(\"x\")//people/person return <p>{$x/name/text()}</p>";
  auto run = engine.Run(q);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Direct interpretation returns only the person names; the rewritten
  // plan surfaces extra name-tagged nodes.
  EXPECT_EQ(*run, DirectResult(q, engine.document()));
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = Document::Parse(kBib);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    engine_ = std::make_unique<Engine>(std::move(d).value());
    auto st = engine_->InstallModel(TagPartitionedModel(engine_->summary()));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, ExplainAnalyzeReportsPerOperatorMetrics) {
  const std::string q =
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>";
  auto ex = engine_->ExplainAnalyze(q);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_EQ(ex->result, DirectResult(q, engine_->document()));
  // The analyzed plan carries runtime counters for every operator.
  EXPECT_NE(ex->physical.find("tuples="), std::string::npos) << ex->physical;
  EXPECT_NE(ex->physical.find("batches="), std::string::npos) << ex->physical;
  EXPECT_FALSE(engine_->LastQueryMetrics().empty());
  EXPECT_GT(engine_->LastQueryTotalTuples(), 0);
  // The logical plan is the rewriter's combined plan.
  EXPECT_NE(ex->logical.find("Retype"), std::string::npos) << ex->logical;
}

TEST_F(EngineTest, ServingPathStreamsWithoutEvaluatorFallback) {
  // The acceptance bar for the streaming refactor: over a native store,
  // the compiled serving plan must not contain any operator that fell back
  // to the materializing evaluator.
  auto ex = engine_->Explain(
      "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
      "return <a>{$x/author/text()}</a>");
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_EQ(ex->physical.find("(materialized)"), std::string::npos)
      << ex->physical;
}

TEST_F(EngineTest, MetricsSlotsDoNotGrowAcrossQueries) {
  const std::string q =
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>";
  ASSERT_TRUE(engine_->Run(q).ok());
  size_t slots = engine_->LastQueryMetrics().size();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine_->Run(q).ok());
  EXPECT_EQ(engine_->LastQueryMetrics().size(), slots);
}

TEST_F(EngineTest, ConstantQueryRunsThroughUnitPlan) {
  // A query touching no data routes through the same plan builder: the
  // template runs over the unit relation.
  const std::string q = "<greeting><hello></hello></greeting>";
  auto ex = engine_->ExplainAnalyze(q);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_EQ(ex->result, DirectResult(q, engine_->document()));
  EXPECT_NE(ex->logical.find("Unit"), std::string::npos) << ex->logical;
  EXPECT_NE(ex->physical.find("Unit_phi"), std::string::npos) << ex->physical;
}

// ---------------------------------------------------------------------------
// Resource governor (DESIGN.md §8): timeout, cross-thread cancellation, and
// memory-budget exhaustion each abort with the designated StatusCode and
// leave the engine fully usable — the very next query on the same Engine
// must succeed byte-identically, with the engine tracker back at zero.
// ---------------------------------------------------------------------------

class EngineGovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DblpOptions d;
    d.records = 80;
    engine_ = std::make_unique<Engine>(GenerateDblp(d));
    auto st = engine_->InstallModel(TagPartitionedModel(engine_->summary()));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  const std::string query_ =
      "for $x in doc(\"dblp\")//article return <t>{$x/title/text()}</t>";

  // Asserts the engine still answers `query_` byte-identically after an
  // aborted run, and that every budget charge was returned.
  void ExpectRecovered() {
    EXPECT_EQ(engine_->memory().used(), 0);
    auto again = engine_->Run(query_);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(*again, DirectResult(query_, engine_->document()));
    EXPECT_EQ(engine_->memory().used(), 0);
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineGovernorTest, TimeoutMidQueryReturnsDeadlineExceeded) {
  Engine::Options o = engine_->options();
  // Negative = deadline already expired: the first cooperative check trips,
  // deterministically, regardless of machine speed.
  o.timeout_ms = -1;
  engine_->SetOptions(o);
  auto r = engine_->Run(query_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();

  o.timeout_ms = 0;
  engine_->SetOptions(o);
  ExpectRecovered();
}

TEST_F(EngineGovernorTest, GenerousTimeoutDoesNotFire) {
  Engine::Options o = engine_->options();
  o.timeout_ms = 60'000;
  engine_->SetOptions(o);
  auto r = engine_->Run(query_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, DirectResult(query_, engine_->document()));
}

TEST_F(EngineGovernorTest, CancelFromAnotherThreadReturnsCancelled) {
  // Deterministic mid-query cancellation without timing assumptions: the
  // installed control trips after a fixed number of cooperative checks,
  // exactly as an Engine::Cancel() racing mid-query would. batch_size=1
  // guarantees the plan performs far more checks than the trip point.
  auto control = std::make_shared<QueryControl>();
  control->CancelAfterChecks(20);
  Engine::Options o = engine_->options();
  o.batch_size = 1;
  o.control = control;
  engine_->SetOptions(o);
  auto r = engine_->Run(query_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << r.status().ToString();
  EXPECT_GT(control->checks(), 0);

  o.control = nullptr;
  o.batch_size = TupleBatch::kDefaultCapacity;
  engine_->SetOptions(o);
  ExpectRecovered();
}

TEST_F(EngineGovernorTest, EngineCancelTripsInFlightControl) {
  // The public Cancel() surface: install an observable control, trip it via
  // Engine::Cancel() from another thread once the query is demonstrably
  // running (checks() > 0), and expect a clean kCancelled.
  auto control = std::make_shared<QueryControl>();
  Engine::Options o = engine_->options();
  o.batch_size = 1;
  o.control = control;
  engine_->SetOptions(o);
  std::thread canceller([&] {
    while (control->checks() == 0) std::this_thread::yield();
    engine_->Cancel();
  });
  auto r = engine_->Run(query_);
  canceller.join();
  // The query either finished before Cancel() landed (legal: cancellation
  // is cooperative) or aborted with kCancelled — never anything else.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << r.status().ToString();
  } else {
    EXPECT_EQ(*r, DirectResult(query_, engine_->document()));
  }

  o.control = nullptr;
  o.batch_size = TupleBatch::kDefaultCapacity;
  engine_->SetOptions(o);
  ExpectRecovered();
}

TEST_F(EngineGovernorTest, MemoryBudgetExhaustionReturnsResourceExhausted) {
  Engine::Options o = engine_->options();
  // Far below what the Sort_φ materialization of 80 dblp articles needs.
  o.memory_limit_bytes = 512;
  engine_->SetOptions(o);
  auto r = engine_->Run(query_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();

  o.memory_limit_bytes = 0;
  engine_->SetOptions(o);
  ExpectRecovered();
}

TEST_F(EngineGovernorTest, BudgetedQueryUnderLimitSucceedsAndReportsPeak) {
  Engine::Options o = engine_->options();
  o.memory_limit_bytes = int64_t{1} << 30;
  engine_->SetOptions(o);
  auto ex = engine_->ExplainAnalyze(query_);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_EQ(ex->result, DirectResult(query_, engine_->document()));
  // DescribeAnalyze surfaces per-operator peak bytes.
  EXPECT_NE(ex->physical.find("mem="), std::string::npos) << ex->physical;
  EXPECT_EQ(engine_->memory().used(), 0);
}

TEST_F(EngineGovernorTest, BudgetExhaustionLeavesConcurrentQueryUnaffected) {
  // Acceptance criterion: one query blowing its per-query budget must not
  // disturb a concurrent query on the same engine. The per-query budget is
  // engine-global configuration (read at BeginQuery, tracked per query), so
  // it is set once, before any thread starts: the article query materializes
  // far more than the budget in its Sort_φ buffer (kResourceExhausted) while
  // the constant query holds almost nothing and completes under the very
  // same limit, concurrently, on the same engine.
  const std::string light_query = "<greeting><hello></hello></greeting>";
  std::string light_expected = DirectResult(light_query, engine_->document());
  Engine::Options o = engine_->options();
  o.memory_limit_bytes = 4096;
  engine_->SetOptions(o);

  std::atomic<int> light_ok{0};
  std::atomic<int> light_failed{0};
  std::atomic<int> victim_exhausted{0};
  std::atomic<int> victim_other{0};
  std::thread light([&] {
    for (int i = 0; i < 20; ++i) {
      auto r = engine_->Run(light_query);
      if (r.ok() && *r == light_expected) {
        light_ok.fetch_add(1);
      } else {
        light_failed.fetch_add(1);
      }
    }
  });
  std::thread victim([&] {
    for (int i = 0; i < 5; ++i) {
      auto r = engine_->Run(query_);
      if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted) {
        victim_exhausted.fetch_add(1);
      } else {
        victim_other.fetch_add(1);
      }
    }
  });
  light.join();
  victim.join();
  EXPECT_EQ(light_ok.load(), 20);
  EXPECT_EQ(light_failed.load(), 0);
  EXPECT_EQ(victim_exhausted.load(), 5);
  EXPECT_EQ(victim_other.load(), 0);

  o.memory_limit_bytes = 0;
  engine_->SetOptions(o);
  ExpectRecovered();
}

}  // namespace
}  // namespace uload
