// Containment under summary constraints (thesis Ch. 4).
#include <gtest/gtest.h>

#include "containment/containment.h"
#include "containment/embedding.h"
#include "xam/xam_parser.h"
#include "xml/document.h"

namespace uload {
namespace {

// A small XMark-shaped fragment: region items have descriptions; only item
// children of a region carry a description; listitems only occur below
// description/parlist; keyword only below listitem.
constexpr const char* kShop =
    "<site>"
    "<regions>"
    "<europe>"
    "<item id=\"i1\">"
    "<name>bike</name>"
    "<description><parlist><listitem><keyword>fast</keyword>"
    "</listitem></parlist></description>"
    "<mailbox><mail>m1</mail></mailbox>"
    "</item>"
    "<item id=\"i2\"><name>car</name>"
    "<description><parlist><listitem><keyword>red</keyword>"
    "</listitem></parlist></description>"
    "</item>"
    "</europe>"
    "</regions>"
    "<people><person><name>Ann</name><age>30</age></person>"
    "<person><name>Bob</name><age>40</age></person></people>"
    "</site>";

class ContainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = Document::Parse(kShop);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
  }

  Xam P(const std::string& text) {
    auto x = ParseXam(text);
    EXPECT_TRUE(x.ok()) << x.status().ToString();
    return std::move(x).value();
  }

  bool Contained(const Xam& p, const Xam& q, ContainmentStats* st = nullptr) {
    auto r = IsContained(p, q, summary_, {}, st);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && *r;
  }

  Document doc_;
  PathSummary summary_;
};

TEST_F(ContainTest, SelfContainment) {
  Xam p = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  EXPECT_TRUE(Contained(p, p));
}

TEST_F(ContainTest, WildcardGeneralizes) {
  Xam p = P(
      "xam\nnode e1 label=item id=s\nedge top // j e1\n");
  Xam q = P(
      "xam\nnode e1 id=s\nedge top // j e1\n");
  EXPECT_TRUE(Contained(p, q));
  // All elements vs only items: not contained the other way.
  EXPECT_FALSE(Contained(q, p));
}

TEST_F(ContainTest, ChildWithinDescendant) {
  Xam p = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam q = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 // j e2\n");
  EXPECT_TRUE(Contained(p, q));
  // In this summary every name *descendant* of person is also a child, so
  // the reverse containment holds too — a summary-only equivalence.
  EXPECT_TRUE(Contained(q, p));
}

TEST_F(ContainTest, SummaryMakesStarEquivalentToItem) {
  // §5.2: children of region elements that have a description child are
  // exactly the items.
  Xam star = P(
      "xam\nnode e1 label=europe\nnode e2 id=s\nnode e3 label=description\n"
      "edge top // j e1\nedge e1 / j e2\nedge e2 / s e3\n");
  Xam item = P(
      "xam\nnode e1 label=item id=s\nedge top // j e1\n");
  EXPECT_TRUE(Contained(star, item));
  EXPECT_TRUE(Contained(item, star));
}

TEST_F(ContainTest, PathEquivalenceThroughRecursionFreeSummary) {
  // //item//keyword ≡_S //item/description/parlist/listitem/keyword.
  Xam direct = P(
      "xam\nnode e1 label=item\nnode e2 label=keyword id=s val\n"
      "edge top // j e1\nedge e1 // j e2\n");
  Xam spelled = P(
      "xam\nnode e1 label=item\nnode e2 label=description\n"
      "node e3 label=parlist\nnode e4 label=listitem\n"
      "node e5 label=keyword id=s val\n"
      "edge top // j e1\nedge e1 / j e2\nedge e2 / j e3\n"
      "edge e3 / j e4\nedge e4 / j e5\n");
  EXPECT_TRUE(Contained(direct, spelled));
  EXPECT_TRUE(Contained(spelled, direct));
}

TEST_F(ContainTest, DifferentLabelsNotContained) {
  Xam p = P("xam\nnode e1 label=name id=s\nedge top // j e1\n");
  Xam q = P("xam\nnode e1 label=age id=s\nedge top // j e1\n");
  EXPECT_FALSE(Contained(p, q));
}

TEST_F(ContainTest, UnsatisfiablePatternContainedInAnything) {
  Xam p = P("xam\nnode e1 label=zzz id=s\nedge top // j e1\n");
  Xam q = P("xam\nnode e1 label=name id=s\nedge top // j e1\n");
  EXPECT_FALSE(IsSatisfiable(p, summary_));
  EXPECT_TRUE(Contained(p, q));
}

TEST_F(ContainTest, AttributeSpecsMustMatch) {
  // Prop. 4.4.3(1): same node, different stored attributes.
  Xam p = P("xam\nnode e1 label=name id=s val\nedge top // j e1\n");
  Xam q = P("xam\nnode e1 label=name id=s\nedge top // j e1\n");
  EXPECT_FALSE(Contained(p, q));
  ContainmentOptions lax;
  lax.check_attributes = false;
  auto r = IsContained(p, q, summary_, lax);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(ContainTest, DecoratedPerNodeImplication) {
  Xam narrow = P(
      "xam\nnode e1 label=person\nnode e2 label=age id=s val=30\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam wide = P(
      "xam\nnode e1 label=person\nnode e2 label=age id=s val>20\n"
      "edge top // j e1\nedge e1 / j e2\n");
  EXPECT_TRUE(Contained(narrow, wide));
  EXPECT_FALSE(Contained(wide, narrow));
}

TEST_F(ContainTest, DecoratedUnionCoverage) {
  // §4.4.2's key case: v>20 is covered by (v<35) ∪ (v>25) even though
  // neither disjunct alone contains it.
  Xam p = P(
      "xam\nnode e1 label=age id=s val>20\nedge top // j e1\n");
  Xam q1 = P(
      "xam\nnode e1 label=age id=s val<35\nedge top // j e1\n");
  Xam q2 = P(
      "xam\nnode e1 label=age id=s val>25\nedge top // j e1\n");
  EXPECT_FALSE(Contained(p, q1));
  EXPECT_FALSE(Contained(p, q2));
  auto r = IsContainedInUnion(p, {&q1, &q2}, summary_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
  // But v>20 is NOT covered by (v<15) ∪ (v>25).
  Xam q3 = P(
      "xam\nnode e1 label=age id=s val<15\nedge top // j e1\n");
  auto r2 = IsContainedInUnion(p, {&q3, &q2}, summary_);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST_F(ContainTest, UnionOfPathsCoversGeneralPattern) {
  // //name ⊆ (//person/name) ∪ (//item/name): in this summary every name is
  // under person or item.
  Xam p = P("xam\nnode e1 label=name id=s\nedge top // j e1\n");
  Xam q1 = P(
      "xam\nnode e1 label=person\nnode e2 label=name id=s\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam q2 = P(
      "xam\nnode e1 label=item\nnode e2 label=name id=s\n"
      "edge top // j e1\nedge e1 / j e2\n");
  auto r = IsContainedInUnion(p, {&q1, &q2}, summary_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  auto r1 = IsContained(p, q1, summary_);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(*r1);
}

TEST_F(ContainTest, OptionalEdgesContainment) {
  // Fig. 4.10 analog: pattern with optional keyword edge is contained in
  // the same pattern with the optional subtree generalized.
  Xam p1 = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=keyword val\n"
      "edge top // j e1\nedge e1 // o e2\n");
  Xam p2 = P(
      "xam\nnode e1 label=item id=s\nnode e2 val\n"
      "edge top // j e1\nedge e1 // o e2\n");
  // (item, keyword-val) tuples are a subset of (item, *-val) tuples.
  EXPECT_TRUE(Contained(p1, p2));
  // The reverse fails: p2 also produces (item, name-val) pairs.
  EXPECT_FALSE(Contained(p2, p1));
  // Optional is weaker than required on the containee side: a strict
  // pattern is contained in its optional version only if the match always
  // exists; keyword always exists under item here.
  Xam strict = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=keyword val\n"
      "edge top // j e1\nedge e1 // j e2\n");
  EXPECT_TRUE(Contained(strict, p1));
  EXPECT_TRUE(Contained(p1, strict));  // summary: every item has a keyword
}

TEST_F(ContainTest, OptionalNotEquivalentWhenMissing) {
  // mail exists under item i1 only; optional(mail) vs strict(mail) differ.
  Xam opt = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=mail val\n"
      "edge top // j e1\nedge e1 // o e2\n");
  Xam strict = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=mail val\n"
      "edge top // j e1\nedge e1 // j e2\n");
  EXPECT_TRUE(Contained(strict, opt));
  EXPECT_FALSE(Contained(opt, strict));
}

TEST_F(ContainTest, NestedPatternsNeedMatchingNesting) {
  Xam nested = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / nj e2\n");
  Xam flat = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  // Different nesting signatures (Prop. 4.4.4 2a).
  EXPECT_FALSE(Contained(nested, flat));
  EXPECT_FALSE(Contained(flat, nested));
  EXPECT_TRUE(Contained(nested, nested));
}

TEST_F(ContainTest, SemijoinSubtreesAreExistential) {
  // //person[age] with age semijoined ⊆ //person — every person has an age.
  Xam p = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=age\n"
      "edge top // j e1\nedge e1 / s e2\n");
  Xam q = P("xam\nnode e1 label=person id=s\nedge top // j e1\n");
  EXPECT_TRUE(Contained(p, q));
  EXPECT_TRUE(Contained(q, p));  // strong edge person->age in this summary
}

TEST_F(ContainTest, CanonicalModelStatsExposed) {
  Xam p = P(
      "xam\nnode e1 id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  ContainmentStats st;
  EXPECT_TRUE(Contained(p, p, &st));
  // * with a name child: person and item -> 2 canonical trees.
  EXPECT_EQ(st.canonical_model_size, 2u);
}

TEST_F(ContainTest, RootChildEdgeRestricts) {
  Xam site_child = P(
      "xam\nnode e1 label=site id=s\nedge top / j e1\n");
  Xam any_site = P(
      "xam\nnode e1 label=site id=s\nedge top // j e1\n");
  EXPECT_TRUE(Contained(site_child, any_site));
  EXPECT_TRUE(Contained(any_site, site_child));  // site only at the root
}

TEST_F(ContainTest, EmbeddingAnnotationsMatchEnumeration) {
  Xam p = P(
      "xam\nnode e1 id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  auto annots = PathAnnotations(p, summary_);
  auto embs = EmbedIntoSummary(p, summary_);
  // The e1 annotation is exactly the set of first components of embeddings.
  std::set<SummaryNodeId> from_embs;
  for (const auto& e : embs) from_embs.insert(e[1]);
  std::set<SummaryNodeId> from_annot(annots[1].begin(), annots[1].end());
  EXPECT_EQ(from_embs, from_annot);
  EXPECT_EQ(from_annot.size(), 2u);  // person, item
}

}  // namespace
}  // namespace uload
