// Property test: the XAM text syntax is a faithful serialization.
// Parse(Print(x)) must be structurally identical to x for every pattern the
// generator can produce, and printing must reach a fixpoint after one
// round trip. Hand-written cases cover the corners the generator does not
// reach: interval formulas, exclusions, and the regression where ` cont`
// was emitted after a mid-line `# formula:` comment and swallowed.
#include <gtest/gtest.h>

#include "workload/pattern_gen.h"
#include "workload/xmark.h"
#include "xam/xam.h"
#include "xam/xam_parser.h"
#include "xam/xam_printer.h"

namespace uload {
namespace {

class XamRoundtripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = GenerateXMark(XMarkScale(0.02));
    summary_ = PathSummary::Build(&doc_);
  }

  // Asserts the full identity: parse succeeds, the reparsed XAM is
  // structurally equal (names ignored, formulas compared semantically), and
  // printing is a fixpoint.
  void CheckRoundtrip(const Xam& x, const std::string& what) {
    std::string text = PrintXam(x);
    auto reparsed = ParseXam(text);
    ASSERT_TRUE(reparsed.ok())
        << what << ": " << reparsed.status().ToString() << "\n" << text;
    EXPECT_TRUE(x.StructurallyEquals(*reparsed))
        << what << ": reparse not structurally equal\n" << text << "\nvs\n"
        << PrintXam(*reparsed);
    EXPECT_EQ(text, PrintXam(*reparsed))
        << what << ": print not a fixpoint";
  }

  Document doc_;
  PathSummary summary_;
};

TEST_F(XamRoundtripTest, GeneratedPatternsRoundtrip) {
  // The generator only emits single-equality formulas, so the full identity
  // must hold for every seed.
  PatternGenOptions opts;
  for (uint32_t seed = 0; seed < 200; ++seed) {
    PatternGenerator gen(&summary_, seed);
    Xam x = gen.Generate(opts);
    CheckRoundtrip(x, "seed " + std::to_string(seed));
  }
}

TEST_F(XamRoundtripTest, GeneratedPatternVariationsRoundtrip) {
  // Sweep the generator knobs so optional edges, wildcards, multiple return
  // nodes and deep patterns all hit the printer.
  for (uint32_t seed = 0; seed < 50; ++seed) {
    PatternGenOptions opts;
    opts.nodes = 3 + static_cast<int>(seed % 8);
    opts.return_nodes = 1 + static_cast<int>(seed % 3);
    opts.predicate_percent = 60;
    opts.optional_percent = 80;
    PatternGenerator gen(&summary_, 1000 + seed);
    Xam x = gen.Generate(opts);
    CheckRoundtrip(x, "variation seed " + std::to_string(seed));
  }
}

TEST_F(XamRoundtripTest, EqualityFormulas) {
  Xam x;
  XamNodeId n = x.AddNode(kXamRoot, Axis::kDescendant, "item");
  x.StoreId(n).StoreVal(n);
  x.ValPredicate(n, ValueFormula::Equals(AtomicValue::Number(42)));
  CheckRoundtrip(x, "numeric equality");

  Xam y;
  XamNodeId m = y.AddNode(kXamRoot, Axis::kDescendant, "name");
  y.StoreId(m);
  y.ValPredicate(m, ValueFormula::Equals(AtomicValue::String("two words")));
  CheckRoundtrip(y, "quoted string equality");
}

TEST_F(XamRoundtripTest, IntervalFormulas) {
  struct Case {
    ValueFormula f;
    const char* what;
  } cases[] = {
      {ValueFormula::Atom(Comparator::kGt, AtomicValue::Number(3)),
       "open lower bound"},
      {ValueFormula::Atom(Comparator::kGe, AtomicValue::Number(3)),
       "closed lower bound"},
      {ValueFormula::Atom(Comparator::kLt, AtomicValue::Number(9)),
       "open upper bound"},
      {ValueFormula::Atom(Comparator::kLe, AtomicValue::Number(9)),
       "closed upper bound"},
      {ValueFormula::Atom(Comparator::kGe, AtomicValue::Number(3))
           .And(ValueFormula::Atom(Comparator::kLt, AtomicValue::Number(9))),
       "half-open interval"},
      {ValueFormula::Atom(Comparator::kGt, AtomicValue::String("a"))
           .And(ValueFormula::Atom(Comparator::kLe, AtomicValue::String("m"))),
       "string interval"},
  };
  for (const Case& c : cases) {
    Xam x;
    XamNodeId n = x.AddNode(kXamRoot, Axis::kDescendant, "item");
    x.StoreId(n);
    x.ValPredicate(n, c.f);
    CheckRoundtrip(x, c.what);
  }
}

TEST_F(XamRoundtripTest, ExclusionFormulas) {
  Xam x;
  XamNodeId n = x.AddNode(kXamRoot, Axis::kDescendant, "item");
  x.StoreId(n);
  x.ValPredicate(n, ValueFormula::Atom(Comparator::kNe, AtomicValue::Number(7)));
  CheckRoundtrip(x, "numeric exclusion");

  Xam y;
  XamNodeId m = y.AddNode(kXamRoot, Axis::kDescendant, "name");
  y.StoreId(m);
  y.ValPredicate(m,
                 ValueFormula::Atom(Comparator::kNe, AtomicValue::String("x")));
  CheckRoundtrip(y, "string exclusion");
}

TEST_F(XamRoundtripTest, ContSurvivesUnprintableFormula) {
  // Regression: a formula outside the single-conjunction grammar falls back
  // to a trailing comment. ` cont` used to be appended after that comment
  // and silently swallowed on reparse. The formula itself is lossy (that is
  // what the comment records), but every other option must survive.
  Xam x;
  XamNodeId n = x.AddNode(kXamRoot, Axis::kDescendant, "item");
  x.StoreId(n).StoreCont(n);
  ValueFormula two_intervals =
      ValueFormula::Equals(AtomicValue::Number(1))
          .Or(ValueFormula::Equals(AtomicValue::Number(5)));
  x.ValPredicate(n, two_intervals);

  std::string text = PrintXam(x);
  EXPECT_NE(text.find(" cont"), std::string::npos) << text;
  EXPECT_NE(text.find("# formula:"), std::string::npos) << text;
  auto reparsed = ParseXam(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  XamNodeId m = (*reparsed).PreOrder()[1];
  EXPECT_TRUE((*reparsed).node(m).stores_cont) << text;
  EXPECT_TRUE((*reparsed).node(m).stores_id);
  // The multi-interval formula is not expressible; it degrades to True.
  EXPECT_TRUE((*reparsed).node(m).val_formula.IsTrue());
}

TEST_F(XamRoundtripTest, MidLineCommentsAreIgnored) {
  auto x = ParseXam(
      "xam  # header comment\n"
      "node e1 label=person id=s  # trailing note\n"
      "edge top // j e1  # edge note\n");
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_EQ(x->size(), 2);
  XamNodeId n = x->NodeByName("e1");
  ASSERT_NE(n, -1);
  EXPECT_TRUE(x->node(n).stores_id);
}

}  // namespace
}  // namespace uload
