// XAM language units: parser, printer round trip, schema derivation,
// structural introspection.
#include <gtest/gtest.h>

#include "xam/xam_parser.h"
#include "xam/xam_printer.h"

namespace uload {
namespace {

TEST(XamParser, FullFeatureParse) {
  auto x = ParseXam(
      "xam ordered\n"
      "# a comment line\n"
      "node e1 label=book id=s! tag val cont\n"
      "node e2 label=@year val=\"1999\"\n"
      "node e3 label=title id=p val!\n"
      "node e4 val>3\n"
      "edge top // j e1\n"
      "edge e1 / s e2\n"
      "edge e1 / nj e3\n"
      "edge e1 // no e4\n");
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_TRUE(x->ordered());
  EXPECT_EQ(x->size(), 5);
  XamNodeId e1 = x->NodeByName("e1");
  EXPECT_TRUE(x->node(e1).stores_id);
  EXPECT_TRUE(x->node(e1).id_required);
  EXPECT_EQ(x->node(e1).id_kind, IdKind::kStructural);
  EXPECT_TRUE(x->node(e1).stores_tag);
  EXPECT_TRUE(x->node(e1).stores_cont);
  XamNodeId e2 = x->NodeByName("e2");
  EXPECT_TRUE(x->node(e2).is_attribute);
  AtomicValue c;
  EXPECT_TRUE(x->node(e2).val_formula.IsSingleEquality(&c));
  XamNodeId e3 = x->NodeByName("e3");
  EXPECT_EQ(x->node(e3).id_kind, IdKind::kParental);
  EXPECT_TRUE(x->node(e3).val_required);
  XamNodeId e4 = x->NodeByName("e4");
  EXPECT_TRUE(x->node(e4).is_wildcard());
  EXPECT_TRUE(x->IncomingEdge(e4).optional());
  EXPECT_TRUE(x->IncomingEdge(e4).nested());
  EXPECT_TRUE(x->IncomingEdge(e3).nested());
  EXPECT_FALSE(x->IncomingEdge(e3).optional());
  EXPECT_TRUE(x->IncomingEdge(e2).semi());
}

TEST(XamParser, Errors) {
  EXPECT_FALSE(ParseXam("node e1\nedge top / j e1\n").ok());  // no header
  EXPECT_FALSE(ParseXam("xam\nnode e1\n").ok());              // no edge
  EXPECT_FALSE(ParseXam("xam\nnode e1\nedge top / j e1\n"
                        "edge top // j e1\n").ok());  // two incoming
  EXPECT_FALSE(ParseXam("xam\nnode e1 id=q\nedge top / j e1\n").ok());
  EXPECT_FALSE(ParseXam("xam\nnode e1 frobnicate\nedge top / j e1\n").ok());
  EXPECT_FALSE(
      ParseXam("xam\nnode e1\nedge top / zz e1\n").ok());  // bad variant
  // Child declared before parent.
  EXPECT_FALSE(ParseXam("xam\nnode e2\nnode e1\n"
                        "edge e1 / j e2\nedge top / j e1\n").ok());
}

TEST(XamPrinter, RoundTrip) {
  const char* text =
      "xam ordered\n"
      "node e1 label=book id=s! tag val cont\n"
      "node e2 label=@year val=\"1999\"\n"
      "node e3 label=title id=p val\n"
      "edge top // j e1\n"
      "edge e1 / s e2\n"
      "edge e1 / nj e3\n";
  auto x = ParseXam(text);
  ASSERT_TRUE(x.ok());
  std::string printed = PrintXam(*x);
  auto x2 = ParseXam(printed);
  ASSERT_TRUE(x2.ok()) << printed << "\n" << x2.status().ToString();
  EXPECT_TRUE(x->StructurallyEquals(*x2)) << printed;
}

TEST(Xam, ViewSchemaOrderAndNesting) {
  auto x = ParseXam(
      "xam\n"
      "node e1 label=a id=s tag\n"
      "node e2 label=b val\n"
      "node e3 label=c cont\n"
      "node e4 label=d val\n"
      "edge top // j e1\n"
      "edge e1 / j e2\n"
      "edge e1 / nj e3\n"
      "edge e3 / no e4\n");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->ViewSchema()->ToString(),
            "e1_ID, e1_Tag, e2_Val, e3(e3_Cont, e4(e4_Val))");
}

TEST(Xam, ReturnNodesAndNestingDepth) {
  auto x = ParseXam(
      "xam\n"
      "node e1 label=a id=s\n"
      "node e2 label=b\n"
      "node e3 label=c val\n"
      "edge top // j e1\n"
      "edge e1 / no e2\n"
      "edge e2 / no e3\n");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->ReturnNodes().size(), 2u);  // e1 and e3 (e2 stores nothing)
  EXPECT_EQ(x->NestingDepth(x->NodeByName("e1")), 0);
  EXPECT_EQ(x->NestingDepth(x->NodeByName("e2")), 1);
  EXPECT_EQ(x->NestingDepth(x->NodeByName("e3")), 2);
  EXPECT_TRUE(x->HasOptionalEdges());
  EXPECT_TRUE(x->HasNestedEdges());
  EXPECT_FALSE(x->IsConjunctive());
}

TEST(Xam, StructuralEquality) {
  auto a = ParseXam(
      "xam\nnode e1 label=a id=s\nnode e2 label=b val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  auto b = ParseXam(
      "xam\nnode x label=a id=s\nnode y label=b val\n"
      "edge top // j x\nedge x / j y\n");
  auto c = ParseXam(
      "xam\nnode e1 label=a id=s\nnode e2 label=b val\n"
      "edge top // j e1\nedge e1 // j e2\n");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(a->StructurallyEquals(*b));  // names do not matter
  EXPECT_FALSE(a->StructurallyEquals(*c));  // axes do
}

}  // namespace
}  // namespace uload
