// The physical (iterator) engine must agree with the materializing
// evaluator on every plan shape, and the compiler must insert Sort_φ
// enforcers so streaming structural joins receive document-order inputs.
#include <gtest/gtest.h>

#include "eval/tag_collections.h"
#include "exec/physical.h"
#include "rewrite/rewriter.h"
#include "storage/catalog.h"
#include "storage/storage_models.h"
#include "workload/xmark.h"
#include "xam/xam_parser.h"

namespace uload {
namespace {

class PhysicalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = GenerateXMark(XMarkScale(0.05));
    summary_ = PathSummary::Build(&doc_);
    people_ = TagCollection(doc_, "person", {"p", true, true, false});
    names_ = TagCollection(doc_, "name", {"n", true, true, false});
    ctx_.relations = {{"people", &people_}, {"names", &names_}};
    ctx_.document = &doc_;
  }

  void CheckAgree(const PlanPtr& plan) {
    auto logical = Evaluate(*plan, ctx_);
    ASSERT_TRUE(logical.ok()) << logical.status().ToString();
    auto physical = ExecutePhysicalPlan(plan, ctx_);
    ASSERT_TRUE(physical.ok()) << physical.status().ToString();
    EXPECT_TRUE(logical->EqualsUnordered(*physical))
        << "logical rows=" << logical->size()
        << " physical rows=" << physical->size();
  }

  Document doc_;
  PathSummary summary_;
  NestedRelation people_;
  NestedRelation names_;
  EvalContext ctx_;
};

TEST_F(PhysicalTest, ScanSelectProject) {
  CheckAgree(LogicalPlan::Scan("people"));
  CheckAgree(LogicalPlan::Select(
      LogicalPlan::Scan("names"),
      Predicate::CompareConst("n_Val", Comparator::kContainsWord,
                              AtomicValue::String("Smith"))));
  CheckAgree(LogicalPlan::Project(LogicalPlan::Scan("names"), {"n_Val"},
                                  /*dedup=*/true));
}

TEST_F(PhysicalTest, StreamingStructuralJoin) {
  PlanPtr join = LogicalPlan::StructuralJoin(
      LogicalPlan::Scan("people"), LogicalPlan::Scan("names"), "p_ID",
      Axis::kChild, "n_ID", JoinVariant::kInner);
  CheckAgree(join);
  // The compiled tree uses the streaming StackTreeDesc. The tag collections
  // are physically in document order, so the scans prove their order
  // (TryAdoptOrder) and no Sort_phi enforcer is needed.
  auto phys = CompilePhysicalPlan(join, ctx_);
  ASSERT_TRUE(phys.ok());
  std::string desc = (*phys)->Describe();
  EXPECT_NE(desc.find("StackTreeDesc_phi"), std::string::npos) << desc;
  EXPECT_EQ(desc.find("Sort_phi"), std::string::npos) << desc;

  // Piping one structural join into another breaks the requirement on the
  // ancestor side — the inner join's output is ordered on its *descendant*
  // attribute — so there the compiler must still insert the enforcer.
  PlanPtr piped = LogicalPlan::StructuralJoin(
      join, LogicalPlan::Scan("names"), "p_ID", Axis::kDescendant, "n_ID",
      JoinVariant::kInner);
  auto piped_phys = CompilePhysicalPlan(piped, ctx_);
  ASSERT_TRUE(piped_phys.ok());
  std::string piped_desc = (*piped_phys)->Describe();
  EXPECT_NE(piped_desc.find("Sort_phi"), std::string::npos) << piped_desc;
}

TEST_F(PhysicalTest, SortedInputsSkipEnforcers) {
  // Wrapping the scans in explicit sorts makes the compiler's EnsureOrder
  // a no-op for the outer join... here we verify the descendant stream is
  // emitted in document order.
  PlanPtr join = LogicalPlan::StructuralJoin(
      LogicalPlan::Scan("people"), LogicalPlan::Scan("names"), "p_ID",
      Axis::kDescendant, "n_ID", JoinVariant::kInner);
  auto phys = CompilePhysicalPlan(join, ctx_);
  ASSERT_TRUE(phys.ok());
  auto rel = ExecutePhysical(phys->get());
  ASSERT_TRUE(rel.ok());
  int idx = rel->schema().IndexOf("n_ID");
  ASSERT_GE(idx, 0);
  for (int64_t i = 1; i < rel->size(); ++i) {
    EXPECT_LE(rel->tuple(i - 1).fields[idx].atom().sid().pre,
              rel->tuple(i).fields[idx].atom().sid().pre);
  }
}

TEST_F(PhysicalTest, JoinVariantsAgree) {
  for (JoinVariant v : {JoinVariant::kInner, JoinVariant::kSemi,
                        JoinVariant::kLeftOuter, JoinVariant::kNestJoin,
                        JoinVariant::kNestOuter}) {
    CheckAgree(LogicalPlan::ValueJoin(LogicalPlan::Scan("people"),
                                      LogicalPlan::Scan("names"), "p_Val",
                                      Comparator::kEq, "n_Val", v, "grp"));
    CheckAgree(LogicalPlan::StructuralJoin(LogicalPlan::Scan("people"),
                                           LogicalPlan::Scan("names"), "p_ID",
                                           Axis::kDescendant, "n_ID", v,
                                           "grp"));
  }
}

TEST_F(PhysicalTest, ProductUnionNavigate) {
  CheckAgree(LogicalPlan::Product(LogicalPlan::Scan("people"),
                                  LogicalPlan::Scan("names")));
  CheckAgree(LogicalPlan::Union(LogicalPlan::Scan("names"),
                                LogicalPlan::Scan("names")));
  NavEmit emit;
  emit.id = true;
  emit.val = true;
  emit.prefix = "em";
  CheckAgree(LogicalPlan::Navigate(LogicalPlan::Scan("people"), "p_ID",
                                   {NavStep{Axis::kChild, "emailaddress"}},
                                   emit, JoinVariant::kLeftOuter));
}

TEST_F(PhysicalTest, RewrittenPlansExecutePhysically) {
  // End to end: compile the rewriter's output through the physical engine.
  Catalog catalog;
  for (NamedXam& v : TagPartitionedModel(summary_)) {
    ASSERT_TRUE(catalog.AddXam(v.name, std::move(v.xam), doc_).ok());
  }
  std::vector<NamedXam> defs;
  for (const auto& v : catalog.views()) {
    defs.push_back({v->name(), v->definition()});
  }
  Rewriter rewriter(&summary_, defs);
  auto q = ParseXam(
      "xam\nnode e1 label=person id=s\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  ASSERT_TRUE(q.ok());
  auto r = rewriter.RewriteBest(*q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EvalContext ctx = catalog.MakeEvalContext(&doc_);
  auto logical = Evaluate(*r->plan, ctx);
  auto physical = ExecutePhysicalPlan(r->plan, ctx);
  ASSERT_TRUE(logical.ok());
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  EXPECT_TRUE(logical->EqualsUnordered(*physical));
}

TEST_F(PhysicalTest, ReopenIsRepeatable) {
  PlanPtr plan = LogicalPlan::Select(
      LogicalPlan::Scan("people"),
      Predicate::NotNull("p_ID"));
  auto phys = CompilePhysicalPlan(plan, ctx_);
  ASSERT_TRUE(phys.ok());
  auto first = ExecutePhysical(phys->get());
  auto second = ExecutePhysical(phys->get());
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_TRUE(first->Equals(*second));
}

}  // namespace
}  // namespace uload
