// Pattern minimization under summary constraints (thesis §4.5, Fig. 4.12).
#include <gtest/gtest.h>

#include "containment/minimize.h"
#include "xam/xam_parser.h"
#include "xml/document.h"

namespace uload {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  void Load(const char* xml) {
    auto d = Document::Parse(xml);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
  }

  Xam P(const std::string& text) {
    auto x = ParseXam(text);
    EXPECT_TRUE(x.ok()) << x.status().ToString();
    return std::move(x).value();
  }

  Document doc_;
  PathSummary summary_;
};

TEST_F(MinimizeTest, RedundantIntermediateNodeErased) {
  // Every c is under a/b, so //a//b//c ≡_S //c.
  Load("<a><b><c>1</c></b><b><c>2</c></b></a>");
  Xam p = P(
      "xam\nnode e1 label=a\nnode e2 label=b\nnode e3 label=c id=s\n"
      "edge top // j e1\nedge e1 // j e2\nedge e2 // j e3\n");
  auto minima = MinimizeByContraction(p, summary_);
  ASSERT_TRUE(minima.ok()) << minima.status().ToString();
  ASSERT_EQ(minima->size(), 1u);
  EXPECT_EQ((*minima)[0].size(), 2);  // ⊤ + c
}

TEST_F(MinimizeTest, DiscriminatingNodeKept) {
  // c appears both under b and directly under a: //b//c is NOT //c.
  Load("<a><b><c>1</c></b><c>2</c></a>");
  Xam p = P(
      "xam\nnode e1 label=b\nnode e2 label=c id=s\n"
      "edge top // j e1\nedge e1 // j e2\n");
  auto minima = MinimizeByContraction(p, summary_);
  ASSERT_TRUE(minima.ok());
  ASSERT_EQ(minima->size(), 1u);
  EXPECT_EQ((*minima)[0].size(), 3);  // b cannot be erased
}

TEST_F(MinimizeTest, GlobalMinimizationFindsForeignLabel) {
  // Fig. 4.12's phenomenon: the pattern //a//b//e and //x//e are equivalent,
  // where x does not occur in the original pattern. Here e occurs under
  // /r/a/b/x/e only, and also r has a decoy /r/b (no e below).
  Load("<r><a><b><x><e>1</e></x></b></a><b><z>2</z></b></r>");
  Xam p = P(
      "xam\nnode e1 label=a\nnode e2 label=b\nnode e3 label=e id=s\n"
      "edge top // j e1\nedge e1 // j e2\nedge e2 // j e3\n");
  auto global = MinimizeGlobally(p, summary_);
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  ASSERT_FALSE(global->empty());
  // //e alone is already equivalent (e only occurs on one path).
  EXPECT_EQ((*global)[0].size(), 2);
}

TEST_F(MinimizeTest, ReturnNodesNeverErased) {
  Load("<a><b><c>1</c></b></a>");
  Xam p = P(
      "xam\nnode e1 label=b id=s\nnode e2 label=c val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  auto minima = MinimizeByContraction(p, summary_);
  ASSERT_TRUE(minima.ok());
  for (const Xam& m : *minima) {
    EXPECT_EQ(m.ReturnNodes().size(), 2u);
  }
}

TEST_F(MinimizeTest, PredicateNodesKept) {
  // Value-constrained nodes carry semantics and are not contraction victims.
  Load("<a><b><c>1</c></b><b><c>2</c></b></a>");
  Xam p = P(
      "xam\nnode e1 label=b id=s\nnode e2 label=c val=1\n"
      "edge top // j e1\nedge e1 / s e2\n");
  auto minima = MinimizeByContraction(p, summary_);
  ASSERT_TRUE(minima.ok());
  ASSERT_EQ(minima->size(), 1u);
  EXPECT_EQ((*minima)[0].size(), 3);
}

TEST_F(MinimizeTest, MinimizationPreservesEquivalence) {
  Load("<a><b><c><d>1</d></c></b><b><c><d>2</d></c></b></a>");
  Xam p = P(
      "xam\nnode e1 label=a\nnode e2 label=b\nnode e3 label=c\n"
      "node e4 label=d id=s val\n"
      "edge top / j e1\nedge e1 / j e2\nedge e2 / j e3\nedge e3 / j e4\n");
  auto minima = MinimizeGlobally(p, summary_);
  ASSERT_TRUE(minima.ok());
  for (const Xam& m : *minima) {
    auto eq = AreEquivalent(p, m, summary_);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << m.ToString();
    EXPECT_LE(m.size(), p.size());
  }
}

}  // namespace
}  // namespace uload
