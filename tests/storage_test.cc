// Storage layer: materialized views, index lookups, catalogs and the
// Chapter-2 storage model builders.
#include <gtest/gtest.h>

#include "eval/tuple_intersect.h"
#include "storage/catalog.h"
#include "storage/storage_models.h"
#include "xam/xam_parser.h"
#include "xml/document.h"

namespace uload {
namespace {

constexpr const char* kLib =
    "<library>"
    "<book><year>1999</year><title>Data on the Web</title>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><year>2002</year><title>The Syntactic Web</title>"
    "<author>Tim</author></book>"
    "</library>";

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = Document::Parse(kLib);
    ASSERT_TRUE(d.ok());
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
  }
  Document doc_;
  PathSummary summary_;
};

TEST_F(StorageTest, MaterializeAndLookup) {
  NamedXam idx = ValueIndex("book", {"year", "title"});
  auto view = MaterializedView::Materialize(idx.name, idx.xam, doc_);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->access_restricted());
  EXPECT_EQ(view->data().size(), 2);

  // Exact lookup through the hash index.
  auto hit = view->Lookup(
      {{idx.name + "_n2_Val", AtomicValue::String("1999")},
       {idx.name + "_n3_Val", AtomicValue::String("Data on the Web")}});
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->size(), 1);

  auto miss = view->Lookup(
      {{idx.name + "_n2_Val", AtomicValue::String("1999")},
       {idx.name + "_n3_Val", AtomicValue::String("No Such Book")}});
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->size(), 0);

  // Partial bindings fall back to a filtered scan.
  auto partial =
      view->Lookup({{idx.name + "_n2_Val", AtomicValue::String("2002")}});
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->size(), 1);
}

TEST_F(StorageTest, CatalogEvalContext) {
  Catalog catalog;
  for (NamedXam& v : TagPartitionedModel(summary_)) {
    ASSERT_TRUE(catalog.AddXam(v.name, std::move(v.xam), doc_).ok());
  }
  ASSERT_NE(catalog.Find("tag_book"), nullptr);
  EXPECT_EQ(catalog.Find("tag_book")->data().size(), 2);
  EXPECT_EQ(catalog.Find("nope"), nullptr);
  EXPECT_GT(catalog.TotalBytes(), 0);

  EvalContext ctx = catalog.MakeEvalContext(&doc_);
  auto r = Evaluate(*LogicalPlan::Scan("tag_author"), ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3);

  // IndexScan goes through the catalog's lookup hook.
  Catalog with_index;
  NamedXam idx = ValueIndex("book", {"year"});
  ASSERT_TRUE(with_index.AddXam(idx.name, idx.xam, doc_).ok());
  EvalContext ctx2 = with_index.MakeEvalContext(&doc_);
  auto lookup = Evaluate(
      *LogicalPlan::IndexScan(
          idx.name, {{idx.name + "_n2_Val", AtomicValue::String("1999")}}),
      ctx2);
  ASSERT_TRUE(lookup.ok()) << lookup.status().ToString();
  EXPECT_EQ(lookup->size(), 1);
}

TEST_F(StorageTest, DuplicateViewNameRejected) {
  Catalog catalog;
  NamedXam v = NonFragmentedStore("book");
  ASSERT_TRUE(catalog.AddXam(v.name, v.xam, doc_).ok());
  auto dup = catalog.AddXam(v.name, v.xam, doc_);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
}

TEST_F(StorageTest, ModelShapes) {
  // Edge model: one tuple per parent-child element pair.
  auto edge = MaterializedView::Materialize("e", EdgeModel()[0].xam, doc_);
  ASSERT_TRUE(edge.ok());
  // library->book x2, book->year x2, book->title x2, book->author x3.
  EXPECT_EQ(edge->data().size(), 9);

  // Path-partitioned model has one view per summary path.
  std::vector<NamedXam> pp = PathPartitionedModel(summary_);
  int64_t non_text_paths = 0;
  for (SummaryNodeId i = 1; i < summary_.size(); ++i) {
    if (summary_.node(i).kind != NodeKind::kText) ++non_text_paths;
  }
  EXPECT_EQ(static_cast<int64_t>(pp.size()), non_text_paths);

  // Non-fragmented store keeps full serialized content.
  auto blob =
      MaterializedView::Materialize("b", NonFragmentedStore("book").xam, doc_);
  ASSERT_TRUE(blob.ok());
  const NestedRelation& data = blob->data();
  int cont = data.schema().IndexOf("blob_book_n1_Cont");
  ASSERT_GE(cont, 0);
  EXPECT_NE(data.tuple(0).fields[cont].atom().as_string().find("<title>"),
            std::string::npos);
}

TEST_F(StorageTest, UniversalModelOuterjoins) {
  auto uni =
      MaterializedView::Materialize("u", UniversalModel(summary_)[0].xam,
                                    doc_);
  ASSERT_TRUE(uni.ok()) << uni.status().ToString();
  // Every element appears; multi-valued children (two authors under one
  // book) multiply their parent row, like the original Universal table's
  // overflow behaviour.
  EXPECT_GE(uni->data().size(), doc_.element_count());
}

TEST(TupleIntersection, AlgorithmOneCases) {
  // Schemas: t(ID, Tag, e2[(Val)]), binding b(ID, e2[(Val)]).
  SchemaPtr inner = Schema::Make({Attribute::Atomic("Val")});
  SchemaPtr ts = Schema::Make({Attribute::Atomic("ID"),
                               Attribute::Atomic("Tag"),
                               Attribute::Collection("e2", inner)});
  SchemaPtr bs = Schema::Make(
      {Attribute::Atomic("ID"), Attribute::Collection("e2", inner)});

  auto val = [](const std::string& s) {
    Tuple t;
    t.fields.emplace_back(AtomicValue::String(s));
    return t;
  };
  Tuple t;
  t.fields.emplace_back(AtomicValue::Number(2));
  t.fields.emplace_back(AtomicValue::String("book"));
  t.fields.emplace_back(TupleList{val("Abiteboul"), val("Suciu")});

  // Agreeing atomic + overlapping collection: keeps the overlap.
  Tuple b1;
  b1.fields.emplace_back(AtomicValue::Number(2));
  b1.fields.emplace_back(TupleList{val("Suciu"), val("Buneman")});
  auto r1 = TupleIntersect(*ts, t, *bs, b1);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1->has_value());
  EXPECT_EQ((**r1).fields[2].collection().size(), 1u);

  // Disagreeing atomic attribute: no data reachable.
  Tuple b2;
  b2.fields.emplace_back(AtomicValue::Number(7));
  b2.fields.emplace_back(TupleList{val("Suciu")});
  auto r2 = TupleIntersect(*ts, t, *bs, b2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->has_value());

  // Empty collection intersection: no data reachable.
  Tuple b3;
  b3.fields.emplace_back(AtomicValue::Number(2));
  b3.fields.emplace_back(TupleList{val("Buneman")});
  auto r3 = TupleIntersect(*ts, t, *bs, b3);
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3->has_value());
}

}  // namespace
}  // namespace uload
