// Engine concurrency torture (TSAN'd in the --server-sweep CI leg): many
// threads hammering ONE engine with Run / Cancel / Save / Load-and-query
// plus metrics and memory pollers, over both storage backends. The suite
// name matches the *Engine* filter in scripts/check.sh so the main TSAN leg
// picks it up too.
//
// Also holds the regression test for the metrics-publication race: Engine
// used to expose a shared ExecContext whose per-operator metric slots were
// cleared and written by every Run — concurrent queries scribbled on each
// other and readers saw torn counters. Metrics now collect on a private
// per-query context and publish as a snapshot under the engine mutex
// (Engine::LastQueryMetrics).
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "storage/storage_models.h"
#include "workload/dblp.h"

namespace uload {
namespace {

constexpr const char* kQueries[] = {
    "for $x in doc(\"dblp\")//article return <t>{$x/title/text()}</t>",
    "for $x in doc(\"dblp\")//inproceedings where $x/year = \"2000\" "
    "return <t>{$x/title/text()}</t>",
};

std::unique_ptr<Engine> MakeEngine(Engine::Options::Backend backend,
                                   size_t thread_budget = 1) {
  Engine::Options o;
  o.backend = backend;
  o.thread_budget = thread_budget;
  auto engine =
      std::make_unique<Engine>(GenerateDblp({/*records=*/80, /*seed=*/7}), o);
  auto st = engine->InstallModel(TagPartitionedModel(engine->summary()));
  EXPECT_TRUE(st.ok()) << st.ToString();
  return engine;
}

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class EngineConcurrencyTest
    : public ::testing::TestWithParam<Engine::Options::Backend> {};

// Concurrent Runs on one engine must be byte-identical to serial runs —
// no cross-query state, no ordering effects.
TEST_P(EngineConcurrencyTest, ConcurrentRunsMatchSerialBaseline) {
  auto engine = MakeEngine(GetParam());
  std::vector<std::string> expected;
  for (const char* q : kQueries) {
    auto r = engine->Run(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        size_t qi = static_cast<size_t>(t + i) % std::size(kQueries);
        auto r = engine->Run(kQueries[qi]);
        if (!r.ok() || *r != expected[qi]) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine->memory().used(), 0);
}

// The full torture: runners, a canceller, savers, loaders querying their
// freshly loaded engines, and metrics/memory pollers — all on one engine.
TEST_P(EngineConcurrencyTest, RunCancelSaveLoadTorture) {
  const bool columnar = GetParam() == Engine::Options::Backend::kColumnar;
  auto engine = MakeEngine(GetParam(), /*thread_budget=*/2);
  std::string expected = *engine->Run(kQueries[0]);

  // A pre-saved image for the Load threads, so loads overlap the torture
  // from the first iteration.
  const std::string preimage =
      TempPath(std::string("torture_pre_") + (columnar ? "col" : "ptr") +
               ".uldcol");
  ASSERT_TRUE(engine->Save(preimage).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> wrong_answers{0};
  std::atomic<int> runs_done{0};
  std::vector<std::thread> threads;

  // Runners: every answer is either the right bytes or a clean governor
  // abort (the canceller is firing at random points).
  constexpr int kRunners = 3;
  constexpr int kItersPerRunner = 10;
  for (int t = 0; t < kRunners; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerRunner; ++i) {
        auto r = engine->Run(kQueries[0]);
        if (r.ok()) {
          if (*r != expected) wrong_answers.fetch_add(1);
        } else if (r.status().code() != StatusCode::kCancelled) {
          wrong_answers.fetch_add(1);
        }
        runs_done.fetch_add(1);
      }
    });
  }

  // Canceller: fires until every runner is done.
  threads.emplace_back([&] {
    while (runs_done.load() < kRunners * kItersPerRunner) {
      engine->Cancel();
      std::this_thread::yield();
    }
  });

  // Savers: persist the engine while queries run; each thread gets its own
  // path (concurrent Save to one path is not part of the contract).
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      const std::string path =
          TempPath("torture_save_" + std::string(columnar ? "col" : "ptr") +
                   "_" + std::to_string(t) + ".uldcol");
      for (int i = 0; i < 3 && !stop.load(); ++i) {
        auto st = engine->Save(path);
        if (!st.ok()) wrong_answers.fetch_add(1);
      }
    });
  }

  // Loaders: restore the pre-saved image and query the loaded engine while
  // the source engine is under fire.
  threads.emplace_back([&] {
    for (int i = 0; i < 2; ++i) {
      auto loaded = Engine::Load(preimage);
      if (!loaded.ok()) {
        wrong_answers.fetch_add(1);
        continue;
      }
      auto st =
          (*loaded)->InstallModel(TagPartitionedModel((*loaded)->summary()));
      if (!st.ok()) {
        wrong_answers.fetch_add(1);
        continue;
      }
      auto r = (*loaded)->Run(kQueries[0]);
      if (!r.ok() || *r != expected) wrong_answers.fetch_add(1);
    }
  });

  // Pollers: metrics and memory reads race the runners by design.
  threads.emplace_back([&] {
    while (runs_done.load() < kRunners * kItersPerRunner) {
      auto metrics = engine->LastQueryMetrics();
      for (const auto& m : metrics) {
        if (m.tuples_produced < 0) wrong_answers.fetch_add(1);
      }
      (void)engine->LastQueryTotalTuples();
      (void)engine->memory().used();
      std::this_thread::yield();
    }
  });

  for (auto& th : threads) th.join();
  stop.store(true);
  EXPECT_EQ(wrong_answers.load(), 0);
  // Every budget returns to zero — aborted queries included.
  EXPECT_EQ(engine->memory().used(), 0);

  // The engine still serves perfectly after the storm.
  auto after = engine->Run(kQueries[0]);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, expected);
}

// Regression: metrics publication vs concurrent Run. Before the fix the
// shared ExecContext meant ClearMetrics() on one thread raced operator
// updates on another; TSAN flagged it and counters tore. Readers now get a
// consistent snapshot while writers run.
TEST_P(EngineConcurrencyTest, MetricsPublicationDoesNotRaceRuns) {
  auto engine = MakeEngine(GetParam());
  // Publish once so readers always have a snapshot.
  ASSERT_TRUE(engine->Run(kQueries[0]).ok());
  int64_t baseline = engine->LastQueryTotalTuples();
  EXPECT_GT(baseline, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread writer([&] {
    for (int i = 0; i < 12; ++i) {
      if (!engine->Run(kQueries[i % 2]).ok()) bad.fetch_add(1);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        // A snapshot is internally consistent: recomputing the total from
        // the returned deque matches the engine's own sum at some published
        // instant; counters are never torn/negative.
        auto metrics = engine->LastQueryMetrics();
        int64_t total = 0;
        for (const auto& m : metrics) {
          if (m.tuples_produced < 0) bad.fetch_add(1);
          total += m.tuples_produced;
        }
        if (!metrics.empty() && total <= 0) bad.fetch_add(1);
        std::this_thread::yield();
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);
}

// Per-call QueryOptions (the admission-control path) are applied per query,
// not engine-wide — concurrent queries with different budgets don't bleed
// into each other.
TEST_P(EngineConcurrencyTest, PerQueryOptionsAreIsolated) {
  auto engine = MakeEngine(GetParam());
  std::string expected = *engine->Run(kQueries[0]);

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  // Half the threads run with an already-expired deadline (must fail with
  // kDeadlineExceeded), half with no deadline (must succeed byte-exact).
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i) {
        Engine::QueryOptions qo;
        if (t % 2 == 0) qo.timeout_ms = -1;
        auto r = engine->Run(kQueries[0], qo);
        if (t % 2 == 0) {
          if (r.ok() ||
              r.status().code() != StatusCode::kDeadlineExceeded) {
            bad.fetch_add(1);
          }
        } else {
          if (!r.ok() || *r != expected) bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(engine->memory().used(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineConcurrencyTest,
    ::testing::Values(Engine::Options::Backend::kPointer,
                      Engine::Options::Backend::kColumnar),
    [](const ::testing::TestParamInfo<Engine::Options::Backend>& info) {
      return info.param == Engine::Options::Backend::kPointer ? "Pointer"
                                                              : "Columnar";
    });

}  // namespace
}  // namespace uload
