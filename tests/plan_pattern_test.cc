// Unit tests for the (plan, pattern) composition machinery of §5.5.
#include <gtest/gtest.h>

#include "rewrite/plan_pattern.h"
#include "xam/xam_parser.h"
#include "xml/document.h"

namespace uload {
namespace {

class PlanPatternTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = Document::Parse(
        "<site>"
        "<people><person><name>Ann</name></person>"
        "<person><name>Bob</name></person></people>"
        "<items><item><name>bike</name></item></items>"
        "</site>");
    ASSERT_TRUE(d.ok());
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
  }
  Xam P(const std::string& text) {
    auto x = ParseXam(text);
    EXPECT_TRUE(x.ok()) << x.status().ToString();
    return std::move(x).value();
  }
  Document doc_;
  PathSummary summary_;
};

TEST_F(PlanPatternTest, PrefixKeepsStructure) {
  Xam p = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam q = PrefixXamNames(p, "v1_");
  EXPECT_TRUE(p.StructurallyEquals(q));
  EXPECT_EQ(q.NodeByName("v1_e1"), p.NodeByName("e1"));
  EXPECT_EQ(q.NodeByName("e1"), -1);
}

TEST_F(PlanPatternTest, GraftCopiesAnnotations) {
  Xam host = P("xam\nnode a label=person id=s\nedge top // j a\n");
  Xam piece = P(
      "xam\nnode b label=name id=s val val=\"Ann\"\n"
      "edge top // j b\n");
  XamNodeId at = host.NodeByName("a");
  XamNodeId added = GraftSubtree(&host, at, Axis::kDescendant,
                                 JoinVariant::kNestOuter, piece,
                                 piece.NodeByName("b"));
  EXPECT_EQ(host.node(added).name, "b");
  EXPECT_TRUE(host.node(added).stores_val);
  AtomicValue c;
  EXPECT_TRUE(host.node(added).val_formula.IsSingleEquality(&c));
  EXPECT_TRUE(host.IncomingEdge(added).nested());
  EXPECT_TRUE(host.IncomingEdge(added).optional());
}

TEST_F(PlanPatternTest, ComposeStructuralValidCase) {
  // person view + name view: names are descendants of persons OR items, so
  // composing under person must preserve annotations (names under items are
  // excluded by the join, which the composed pattern also excludes).
  Xam people = P("xam\nnode a label=person id=s\nedge top // j a\n");
  Xam names = P("xam\nnode b label=name id=s val\nedge top // j b\n");
  auto composed = ComposeStructural(people, people.NodeByName("a"), names,
                                    names.NodeByName("b"), summary_);
  ASSERT_TRUE(composed.has_value());
  // The composed pattern has person with a name descendant.
  EXPECT_EQ(composed->size(), 3);
}

TEST_F(PlanPatternTest, ComposeStructuralRejectsLostConstraints) {
  // The right side constrains names to be under items; grafting it under
  // person would lose that constraint — must be rejected.
  Xam people = P("xam\nnode a label=person id=s\nedge top // j a\n");
  Xam item_names = P(
      "xam\nnode i label=item\nnode b label=name id=s val\n"
      "edge top // j i\nedge i / j b\n");
  auto composed = ComposeStructural(people, people.NodeByName("a"),
                                    item_names, item_names.NodeByName("b"),
                                    summary_);
  EXPECT_FALSE(composed.has_value());
}

TEST_F(PlanPatternTest, ComposeStructuralRejectsDecoratedUpperChain) {
  // An upper chain carrying a value constraint cannot be replaced by
  // annotation reasoning.
  Xam people = P("xam\nnode a label=person id=s\nedge top // j a\n");
  Xam constrained = P(
      "xam\nnode i label=person val=\"x\"\nnode b label=name id=s val\n"
      "edge top // j i\nedge i / j b\n");
  auto composed = ComposeStructural(people, people.NodeByName("a"),
                                    constrained,
                                    constrained.NodeByName("b"), summary_);
  EXPECT_FALSE(composed.has_value());
}

TEST_F(PlanPatternTest, ComposeMergeUnifiesNodes) {
  Xam ids = P("xam\nnode a label=person id=s\nedge top // j a\n");
  Xam vals = P(
      "xam\nnode b label=person id=s val\nedge top // j b\n");
  auto composed = ComposeMerge(ids, ids.NodeByName("a"), vals,
                               vals.NodeByName("b"), summary_);
  ASSERT_TRUE(composed.has_value());
  XamNodeId merged = composed->NodeByName("a");
  ASSERT_GE(merged, 0);
  EXPECT_TRUE(composed->node(merged).stores_id);
  EXPECT_TRUE(composed->node(merged).stores_val);
  EXPECT_EQ(composed->size(), 2);  // no extra node materialized
}

TEST_F(PlanPatternTest, ComposeMergeRejectsLabelClash) {
  Xam a = P("xam\nnode a label=person id=s\nedge top // j a\n");
  Xam b = P("xam\nnode b label=item id=s\nedge top // j b\n");
  EXPECT_FALSE(ComposeMerge(a, a.NodeByName("a"), b, b.NodeByName("b"),
                            summary_)
                   .has_value());
}

}  // namespace
}  // namespace uload
