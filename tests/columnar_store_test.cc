// The columnar backend's storage contract: every DocumentStore accessor of
// ColumnarDocument must agree row-for-row with the pointer tree it was built
// from, and a Save/Load round trip through the persisted format must hand
// back an indistinguishable store (thesis Ch. 2 physical data independence,
// taken literally at the accessor level).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "storage/columnar/columnar_document.h"
#include "storage/columnar/columnar_format.h"
#include "storage/columnar/varint.h"
#include "storage/storage_models.h"
#include "storage/store.h"
#include "workload/dblp.h"
#include "workload/xmark.h"
#include "xml/serialize.h"

namespace uload {
namespace {

constexpr const char* kBib =
    "<bib>"
    "<book id=\"b1\"><title>Data on the Web</title><year>1999</year>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><title>The Syntactic Web</title><year>2002</year>"
    "<author>Tim</author></book>"
    "<phdthesis><title>XAMs &amp; views</title><year>2007</year>"
    "<author>Arion</author></phdthesis>"
    "</bib>";

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Every accessor of `a` and `b` must agree on every row.
void ExpectStoresEqual(const DocumentStore& a, const DocumentStore& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.document_node(), b.document_node());
  EXPECT_EQ(a.element_count(), b.element_count());
  EXPECT_EQ(a.path_id_limit(), b.path_id_limit());
  for (NodeIndex i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.kind(i), b.kind(i)) << "row " << i;
    EXPECT_EQ(a.label(i), b.label(i)) << "row " << i;
    EXPECT_EQ(a.sid(i).pre, b.sid(i).pre) << "row " << i;
    EXPECT_EQ(a.sid(i).post, b.sid(i).post) << "row " << i;
    EXPECT_EQ(a.sid(i).depth, b.sid(i).depth) << "row " << i;
    EXPECT_EQ(a.parent(i), b.parent(i)) << "row " << i;
    EXPECT_EQ(a.ordinal(i), b.ordinal(i)) << "row " << i;
    EXPECT_EQ(a.path_id(i), b.path_id(i)) << "row " << i;
    EXPECT_EQ(a.Children(i), b.Children(i)) << "row " << i;
    EXPECT_EQ(a.Value(i), b.Value(i)) << "row " << i;
    EXPECT_EQ(a.Dewey(i), b.Dewey(i)) << "row " << i;
    if (a.kind(i) == NodeKind::kElement) {
      EXPECT_EQ(a.Content(i), b.Content(i)) << "row " << i;
      EXPECT_EQ(SerializeSubtree(a, i), SerializeSubtree(b, i)) << "row " << i;
    }
  }
  for (int32_t p = 0; p < a.path_id_limit(); ++p) {
    EXPECT_EQ(a.ChunkRows(p), b.ChunkRows(p)) << "path " << p;
  }
}

Document MustParse(const char* xml) {
  auto d = Document::Parse(xml);
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

TEST(ColumnarStore, AccessorParityOnBib) {
  Document doc = MustParse(kBib);
  PathSummary summary = PathSummary::Build(&doc);
  ColumnarDocument col = ColumnarDocument::FromDocument(doc);
  EXPECT_EQ(col.backend_name(), "columnar");
  EXPECT_EQ(doc.backend_name(), "pointer");
  ExpectStoresEqual(doc, col);
}

TEST(ColumnarStore, AccessorParityOnGeneratedCorpora) {
  {
    Document doc = GenerateDblp({200, 7});
    PathSummary summary = PathSummary::Build(&doc);
    ExpectStoresEqual(doc, ColumnarDocument::FromDocument(doc));
  }
  {
    Document doc = GenerateXMark(XMarkScale(0.05));
    PathSummary summary = PathSummary::Build(&doc);
    ExpectStoresEqual(doc, ColumnarDocument::FromDocument(doc));
  }
}

TEST(ColumnarStore, SubtreeEndMatchesSidContainment) {
  Document doc = GenerateDblp({50, 7});
  PathSummary summary = PathSummary::Build(&doc);
  ColumnarDocument col = ColumnarDocument::FromDocument(doc);
  for (NodeIndex i = 1; i < col.size(); ++i) {
    // Descendants of i are exactly the contiguous rows (i, subtree_end(i)).
    NodeIndex end = col.subtree_end(i);
    ASSERT_GT(end, i);
    for (NodeIndex j = i + 1; j < col.size() && j < end + 5; ++j) {
      // Pre-order contiguity vs. sid containment (pre < pre', post' < post):
      // the two descendant tests must agree on every row.
      bool sid_desc =
          col.sid(j).pre > col.sid(i).pre && col.sid(j).post < col.sid(i).post;
      EXPECT_EQ(j < end, sid_desc) << "anchor " << i << " row " << j;
    }
  }
}

TEST(ColumnarStore, SaveLoadRoundTripPreservesEveryAccessor) {
  Document doc = GenerateDblp({120, 7});
  PathSummary summary = PathSummary::Build(&doc);
  ColumnarDocument col = ColumnarDocument::FromDocument(doc);
  const std::string path = TempPath("roundtrip.uldcol");
  auto st = SaveColumnar(col, summary.Serialize(), path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = LoadColumnar(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectStoresEqual(col, loaded->document);
  ExpectStoresEqual(doc, loaded->document);
  auto sum2 = PathSummary::Deserialize(loaded->summary_text);
  ASSERT_TRUE(sum2.ok()) << sum2.status().ToString();
  EXPECT_EQ(sum2->size(), summary.size());
  std::remove(path.c_str());
}

TEST(ColumnarStore, EngineSaveLoadAnswersQueriesWithoutReparse) {
  Document doc = MustParse(kBib);
  Engine::Options opts;
  opts.backend = Engine::Options::Backend::kColumnar;
  Engine original(std::move(doc), opts);
  ASSERT_NE(original.columnar_store(), nullptr);
  auto st = original.InstallModel(TagPartitionedModel(original.summary()));
  ASSERT_TRUE(st.ok()) << st.ToString();
  const std::string q =
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>";
  auto before = original.Run(q);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  const std::string path = TempPath("engine.uldcol");
  st = original.Save(path);
  ASSERT_TRUE(st.ok()) << st.ToString();

  auto restored = Engine::Load(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_NE((*restored)->columnar_store(), nullptr);
  st = (*restored)->InstallModel(TagPartitionedModel((*restored)->summary()));
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto after = (*restored)->Run(q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*before, *after);
  std::remove(path.c_str());
}

TEST(ColumnarStore, PointerBackendEngineCanSaveToo) {
  Document doc = MustParse(kBib);
  Engine original(std::move(doc));  // default backend: pointer tree
  ASSERT_EQ(original.columnar_store(), nullptr);
  const std::string path = TempPath("from_pointer.uldcol");
  auto st = original.Save(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto restored = Engine::Load(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectStoresEqual(original.store(), (*restored)->store());
  std::remove(path.c_str());
}

TEST(ColumnarStore, VirtualExtentGateAcceptsSimpleCollections) {
  Document doc = MustParse(kBib);
  PathSummary summary = PathSummary::Build(&doc);
  int virtualized = 0;
  for (const NamedXam& v : TagPartitionedModel(summary)) {
    if (QualifiesAsVirtualExtent(v.xam)) ++virtualized;
  }
  // The whole tag-partitioned model is simple descendant collections —
  // every view must run as a virtual extent over the column store.
  EXPECT_GT(virtualized, 0);
}

TEST(ColumnarStore, ColumnarEnginePlansUseVirtualExtentScans) {
  Document doc = MustParse(kBib);
  Engine::Options opts;
  opts.backend = Engine::Options::Backend::kColumnar;
  Engine engine(std::move(doc), opts);
  auto st = engine.InstallModel(TagPartitionedModel(engine.summary()));
  ASSERT_TRUE(st.ok()) << st.ToString();
  // //title targets a leaf-tag view: its values are dictionary-backed, so
  // the extent stays virtual. (//book would materialize — book elements have
  // element children, so their Val is not dictionary-servable.)
  auto ex = engine.Explain(
      "for $x in doc(\"bib\")//title return <t>{$x/text()}</t>");
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  // The physical tree must scan the column store directly — a plain Scan
  // would mean the view was silently materialized and the backend swap is
  // not exercising the columnar path at all.
  EXPECT_NE(ex->physical.find("ColumnarScan"), std::string::npos)
      << ex->physical;
}

TEST(ColumnarStore, DeltaVarintRoundTrip) {
  const std::vector<std::vector<uint64_t>> cases = {
      {},
      {0},
      {1, 2, 3, 4, 5},
      {0, 0, 7, 7, 1u << 20, (1u << 20) + 1, uint64_t{1} << 40},
  };
  for (const auto& ids : cases) {
    std::string buf;
    PutDeltaVarints(ids, &buf);
    DeltaVarintReader r(reinterpret_cast<const uint8_t*>(buf.data()),
                        buf.size());
    std::vector<uint64_t> back;
    uint64_t v = 0;
    while (r.Next(&v)) back.push_back(v);
    EXPECT_EQ(back, ids);
  }
}

}  // namespace
}  // namespace uload
