// Query-service front-end tests (src/server/): in-process loopback servers
// exercising the session lifecycle, admission control (slots, queue,
// memory, drain), Status→wire error mapping, graceful drain with in-flight
// queries, malformed-frame handling over a real socket, and the
// differential bar — every corpus query answered over the wire must
// byte-match the in-process Engine::Run answer (or its error code), across
// both storage backends and thread budgets {1, 4}.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/storage_models.h"
#include "workload/dblp.h"

namespace uload {
namespace {

constexpr const char* kBib =
    "<bib>"
    "<book><title>Data on the Web</title><year>1999</year>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><title>The Syntactic Web</title><year>2002</year>"
    "<author>Tim</author></book>"
    "<phdthesis><title>XAMs</title><year>2007</year>"
    "<author>Arion</author></phdthesis>"
    "</bib>";

const char* kBibQueries[] = {
    "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>",
    "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
    "return <a>{$x/author/text()}</a>",
    "for $x in doc(\"bib\")//phdthesis return <t>{$x/title/text()}</t>",
};

std::unique_ptr<Engine> MakeBibEngine(
    Engine::Options::Backend backend = Engine::Options::Backend::kPointer) {
  auto d = Document::Parse(kBib);
  EXPECT_TRUE(d.ok());
  Engine::Options o;
  o.backend = backend;
  auto engine = std::make_unique<Engine>(std::move(d).value(), o);
  auto st = engine->InstallModel(PathPartitionedModel(engine->summary()));
  EXPECT_TRUE(st.ok()) << st.ToString();
  return engine;
}

// Simple countdown the tests use to handshake with server-side hooks.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  bool WaitFor(int64_t ms) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(ms),
                        [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

// ---------------------------------------------------------------------------
// AdmissionController unit tests (no sockets).

TEST(AdmissionControl, GrantsUpToMaxConcurrentThenQueues) {
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queued = 1;
  cfg.queue_timeout_ms = 10'000;
  AdmissionController ac(cfg, nullptr);

  auto first = ac.Admit();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(ac.stats().executing, 1);

  // A second admit queues; once the queue position is taken, a third is
  // shed immediately.
  std::atomic<bool> second_admitted{false};
  std::thread waiter([&] {
    auto second = ac.Admit();
    EXPECT_TRUE(second.ok()) << second.status().ToString();
    second_admitted.store(true);
  });
  while (ac.stats().queued == 0) std::this_thread::yield();
  auto third = ac.Admit();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.status().message().find("queue full"), std::string::npos);
  EXPECT_FALSE(second_admitted.load());

  first->Release();
  waiter.join();
  EXPECT_TRUE(second_admitted.load());
  auto s = ac.stats();
  EXPECT_EQ(s.admitted, 2);
  EXPECT_EQ(s.shed_queue_full, 1);
}

TEST(AdmissionControl, QueueWaitIsBounded) {
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queued = 4;
  cfg.queue_timeout_ms = 50;
  AdmissionController ac(cfg, nullptr);
  auto slot = ac.Admit();
  ASSERT_TRUE(slot.ok());
  auto waited = ac.Admit();
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(waited.status().message().find("timeout"), std::string::npos);
  EXPECT_EQ(ac.stats().shed_queue_timeout, 1);
}

TEST(AdmissionControl, ShedsOnEngineMemoryHighWater) {
  MemoryTracker tracker("engine", /*limit_bytes=*/1000);
  AdmissionConfig cfg;
  cfg.memory_headroom = 0.9;
  AdmissionController ac(cfg, &tracker);

  ASSERT_TRUE(tracker.Charge(950).ok());
  auto shed = ac.Admit();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("memory high water"),
            std::string::npos);
  EXPECT_EQ(ac.stats().shed_memory, 1);

  tracker.Release(950);
  auto ok = ac.Admit();
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(AdmissionControl, DrainShedsWaitersAndFutureAdmits) {
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queued = 4;
  cfg.queue_timeout_ms = 10'000;
  AdmissionController ac(cfg, nullptr);
  auto slot = ac.Admit();
  ASSERT_TRUE(slot.ok());

  std::atomic<bool> waiter_shed{false};
  std::thread waiter([&] {
    auto r = ac.Admit();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(r.status().message().find("draining"), std::string::npos);
    waiter_shed.store(true);
  });
  while (ac.stats().queued == 0) std::this_thread::yield();
  ac.BeginDrain();
  waiter.join();
  EXPECT_TRUE(waiter_shed.load());

  auto after = ac.Admit();
  ASSERT_FALSE(after.ok());
  EXPECT_NE(after.status().message().find("draining"), std::string::npos);

  // The held slot still drains normally.
  EXPECT_FALSE(ac.WaitIdle(20));
  slot->Release();
  EXPECT_TRUE(ac.WaitIdle(1000));
}

TEST(AdmissionControl, TicketCarriesAdmitTimeDeadlineAndBudget) {
  AdmissionConfig cfg;
  cfg.query_timeout_ms = 30'000;
  cfg.query_memory_limit_bytes = 1 << 20;
  AdmissionController ac(cfg, nullptr);
  auto t = ac.Admit();
  ASSERT_TRUE(t.ok());
  ASSERT_NE(t->control(), nullptr);
  EXPECT_GT(t->control()->deadline_ns(), QueryControl::NowNs());
  EXPECT_EQ(t->memory_limit_bytes(), 1 << 20);
}

// ---------------------------------------------------------------------------
// Wire error-code mapping: the table must round-trip every StatusCode.

TEST(WireCodes, StatusCodesRoundTripThroughTheWireTable) {
  const StatusCode all[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kParseError,   StatusCode::kNotFound,
      StatusCode::kNotImplemented, StatusCode::kTypeError,
      StatusCode::kInternal,     StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
  };
  for (StatusCode c : all) {
    EXPECT_EQ(WireCodeToStatusCode(
                  static_cast<uint32_t>(StatusToWireCode(c))),
              c);
  }
  // Unknown codes degrade to kInternal, never crash.
  EXPECT_EQ(WireCodeToStatusCode(0xdeadbeef), StatusCode::kInternal);
}

TEST(WireCodes, ErrorPayloadRoundTripsStatus) {
  Status in = Status::DeadlineExceeded("query deadline exceeded");
  Status out = DecodeErrorPayload(EncodeErrorPayload(in));
  EXPECT_EQ(out.code(), in.code());
  EXPECT_EQ(out.message(), in.message());
}

// ---------------------------------------------------------------------------
// Loopback server tests.

TEST(ServerTest, SessionLifecycleAndStats) {
  std::unique_ptr<Engine> engine = MakeBibEngine();
  QueryServer server(engine.get(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto c1 = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  auto c2 = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_NE(c1->session_id(), c2->session_id());

  std::string expected = *engine->Run(kBibQueries[0]);
  for (int i = 0; i < 3; ++i) {
    auto r = c1->Run(kBibQueries[0]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, expected);
  }
  auto r2 = c2->Run(kBibQueries[2]);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(*r2, *engine->Run(kBibQueries[2]));

  EXPECT_TRUE(c1->Goodbye().ok());
  EXPECT_FALSE(c1->connected());
  server.Stop();

  auto s = server.stats();
  EXPECT_EQ(s.sessions_opened, 2);
  EXPECT_EQ(s.queries_ok, 4);
  EXPECT_EQ(s.queries_error, 0);
  EXPECT_EQ(s.admission.admitted, 4);
}

TEST(ServerTest, ExplainOverTheWire) {
  std::unique_ptr<Engine> engine = MakeBibEngine();
  QueryServer server(engine.get(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  auto client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto ex = client->Explain(kBibQueries[0]);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  auto in_process = engine->Explain(kBibQueries[0]);
  ASSERT_TRUE(in_process.ok());
  EXPECT_EQ(*ex, in_process->logical + "\n---\n" + in_process->physical);
}

TEST(ServerTest, ErrorStatusesCrossTheWireIntact) {
  std::unique_ptr<Engine> engine = MakeBibEngine();
  QueryServer server(engine.get(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  auto client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Unparseable XQuery: the engine's ParseError code and message survive.
  const char* bad = "for $x in doc(";
  auto wire = client->Run(bad);
  auto local = engine->Run(bad);
  ASSERT_FALSE(wire.ok());
  ASSERT_FALSE(local.ok());
  EXPECT_EQ(wire.status().code(), local.status().code());
  EXPECT_EQ(wire.status().message(), local.status().message());

  // Session options validate.
  EXPECT_EQ(client->Set("no_such_option", 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client->Set("thread_budget", -2).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServerTest, SessionTimeoutGovernsQueries) {
  std::unique_ptr<Engine> engine = MakeBibEngine();
  QueryServer server(engine.get(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  auto client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Negative timeout = already-expired deadline (the governor's testing
  // convention): the very first batch boundary trips kDeadlineExceeded,
  // which must come back over the wire as exactly that code.
  ASSERT_TRUE(client->Set("timeout_ms", -1).ok());
  auto r = client->Run(kBibQueries[0]);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  // Clearing the override restores service.
  ASSERT_TRUE(client->Set("timeout_ms", 0).ok());
  EXPECT_TRUE(client->Run(kBibQueries[0]).ok());
}

TEST(ServerTest, AdmissionRejectionOverTheWire) {
  std::unique_ptr<Engine> engine = MakeBibEngine();
  ServerConfig cfg;
  cfg.admission.max_concurrent = 1;
  cfg.admission.max_queued = 0;
  auto started = std::make_shared<Gate>();
  auto release = std::make_shared<Gate>();
  std::atomic<int> holds{0};
  cfg.on_query_start = [=, &holds](uint64_t) {
    // Only the first query parks on the gate; later ones run through.
    if (holds.fetch_add(1) == 0) {
      started->Open();
      release->Wait();
    }
  };
  QueryServer server(engine.get(), cfg);
  ASSERT_TRUE(server.Start().ok());

  auto c1 = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c1.ok());
  auto c2 = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c2.ok());

  std::thread holder([&] {
    auto r = c1->Run(kBibQueries[0]);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ASSERT_TRUE(started->WaitFor(5000));

  // The slot is held and the queue admits nobody: load is shed, with the
  // admission counters saying why.
  auto shed = c2->Run(kBibQueries[0]);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("queue full"), std::string::npos);

  release->Open();
  holder.join();
  auto s = server.stats();
  EXPECT_EQ(s.admission.shed_queue_full, 1);
  EXPECT_EQ(s.queries_ok, 1);
  EXPECT_EQ(s.queries_error, 1);
}

TEST(ServerTest, GracefulDrainDeliversInFlightResponse) {
  std::unique_ptr<Engine> engine = MakeBibEngine();
  ServerConfig cfg;
  auto started = std::make_shared<Gate>();
  auto release = std::make_shared<Gate>();
  std::atomic<int> calls{0};
  cfg.on_query_start = [=, &calls](uint64_t) {
    if (calls.fetch_add(1) == 0) {
      started->Open();
      release->Wait();
    }
  };
  QueryServer server(engine.get(), cfg);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();
  std::string expected = *engine->Run(kBibQueries[0]);

  auto client = QueryClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  Result<std::string> in_flight = Status::Internal("not yet run");
  std::thread runner([&] { in_flight = client->Run(kBibQueries[0]); });
  ASSERT_TRUE(started->WaitFor(5000));

  // Stop() while the query is in flight: it must drain, not guillotine.
  std::thread stopper([&] { server.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release->Open();
  runner.join();
  stopper.join();

  ASSERT_TRUE(in_flight.ok()) << in_flight.status().ToString();
  EXPECT_EQ(*in_flight, expected);

  // The drained server accepts nothing new.
  auto after = QueryClient::Connect("127.0.0.1", port);
  EXPECT_FALSE(after.ok());
}

TEST(ServerTest, DrainTimeoutForcesTeardownWithoutHanging) {
  std::unique_ptr<Engine> engine = MakeBibEngine();
  ServerConfig cfg;
  cfg.drain_timeout_ms = 50;  // the straggler outlives the grace period
  auto started = std::make_shared<Gate>();
  auto release = std::make_shared<Gate>();
  std::atomic<int> calls{0};
  cfg.on_query_start = [=, &calls](uint64_t) {
    if (calls.fetch_add(1) == 0) {
      started->Open();
      release->Wait();
    }
  };
  QueryServer server(engine.get(), cfg);
  ASSERT_TRUE(server.Start().ok());
  auto client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  std::thread runner([&] { (void)client->Run(kBibQueries[0]); });
  ASSERT_TRUE(started->WaitFor(5000));

  // Release the straggler shortly after the grace period expires; Stop()
  // must complete either way (never hang), and never crash.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    release->Open();
  });
  server.Stop();
  releaser.join();
  runner.join();
}

// Raw-socket helper for protocol-violation tests: QueryClient refuses to
// send malformed bytes, so speak TCP directly.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void Send(std::string_view bytes) {
    (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }
  // Reads until the server closes; returns everything received.
  std::string DrainToClose() {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

// Decodes the first frame out of a raw byte string; type 0 when none.
Frame FirstFrame(const std::string& bytes) {
  FrameReader reader;
  Frame none{static_cast<FrameType>(0), ""};
  if (!reader.Feed(bytes).ok()) return none;
  auto f = reader.Next();
  return f.has_value() ? *f : none;
}

TEST(ServerTest, MalformedBytesGetAWireErrorAndTeardown) {
  std::unique_ptr<Engine> engine = MakeBibEngine();
  QueryServer server(engine.get(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  {
    // Zero-length declared frame.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    conn.Send(std::string("\x00\x00\x00\x00", 4));
    Frame f = FirstFrame(conn.DrainToClose());
    ASSERT_EQ(f.type, FrameType::kError);
    EXPECT_EQ(DecodeErrorPayload(f.payload).code(), StatusCode::kParseError);
  }
  {
    // Oversized declaration: shed before any payload is buffered.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    conn.Send(std::string("\xff\xff\xff\xff", 4));
    Frame f = FirstFrame(conn.DrainToClose());
    ASSERT_EQ(f.type, FrameType::kError);
    EXPECT_EQ(DecodeErrorPayload(f.payload).code(), StatusCode::kParseError);
  }
  {
    // A response-typed frame from a client is a protocol violation.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    conn.Send(EncodeFrame(FrameType::kResult, "i am not a server"));
    Frame f = FirstFrame(conn.DrainToClose());
    ASSERT_EQ(f.type, FrameType::kError);
    EXPECT_EQ(DecodeErrorPayload(f.payload).code(), StatusCode::kParseError);
  }
  {
    // Truncated frame then close: the server must simply tear down.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    std::string frame = EncodeFrame(FrameType::kRun, kBibQueries[0]);
    conn.Send(frame.substr(0, frame.size() / 2));
  }

  // After all that abuse a healthy client still gets service.
  auto client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Run(kBibQueries[0]).ok());
  EXPECT_GE(server.stats().frames_rejected, 3);
}

// ---------------------------------------------------------------------------
// Differential bar: wire answers byte-match in-process answers — both
// backends, thread budgets {1, 4}, every corpus query, including error
// codes for queries a model cannot answer.

struct DiffCase {
  const char* name;
  std::function<Document()> make_doc;
  std::vector<std::string> queries;
};

std::vector<DiffCase> DifferentialCorpus() {
  std::vector<DiffCase> cases;
  cases.push_back({"bib",
                   [] {
                     auto d = Document::Parse(kBib);
                     EXPECT_TRUE(d.ok());
                     return std::move(d).value();
                   },
                   {kBibQueries[0], kBibQueries[1], kBibQueries[2]}});
  cases.push_back(
      {"dblp",
       [] { return GenerateDblp({60, 7}); },
       {"for $x in doc(\"dblp\")//article return <t>{$x/title/text()}</t>",
        "for $x in doc(\"dblp\")//inproceedings where $x/year = \"2000\" "
        "return <t>{$x/title/text()}</t>"}});
  return cases;
}

TEST(ServerDifferentialTest, WireAnswersByteMatchInProcessAcrossBackends) {
  const Engine::Options::Backend kBackends[] = {
      Engine::Options::Backend::kPointer,
      Engine::Options::Backend::kColumnar};
  const size_t kThreadBudgets[] = {1, 4};
  for (const DiffCase& c : DifferentialCorpus()) {
    for (auto backend : kBackends) {
      Engine::Options o;
      o.backend = backend;
      Engine engine(c.make_doc(), o);
      auto st = engine.InstallModel(PathPartitionedModel(engine.summary()));
      ASSERT_TRUE(st.ok()) << st.ToString();
      QueryServer server(&engine, ServerConfig{});
      ASSERT_TRUE(server.Start().ok());
      for (size_t threads : kThreadBudgets) {
        auto client = QueryClient::Connect("127.0.0.1", server.port());
        ASSERT_TRUE(client.ok()) << client.status().ToString();
        ASSERT_TRUE(
            client->Set("thread_budget", static_cast<int64_t>(threads)).ok());
        for (const std::string& q : c.queries) {
          std::string where = std::string(c.name) + " backend=" +
                              (backend == Engine::Options::Backend::kPointer
                                   ? "pointer"
                                   : "columnar") +
                              " threads=" + std::to_string(threads) +
                              " query: " + q;
          Engine::QueryOptions qo;
          qo.thread_budget = threads;
          auto local = engine.Run(q, qo);
          auto wire = client->Run(q);
          ASSERT_EQ(local.ok(), wire.ok()) << where;
          if (local.ok()) {
            EXPECT_EQ(*wire, *local) << where;
          } else {
            EXPECT_EQ(wire.status().code(), local.status().code()) << where;
          }
        }
      }
      server.Stop();
    }
  }
}

}  // namespace
}  // namespace uload
