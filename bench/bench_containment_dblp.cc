// E4 — Fig. 4.15: synthetic pattern containment over the DBLP summary.
// The thesis found DBLP containment ≈4x faster than XMark because DBLP's
// small summary yields smaller canonical models (XMark's bold/emph tags
// occur on many paths and blow up wildcard matches).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "containment/containment.h"
#include "workload/dblp.h"
#include "workload/pattern_gen.h"
#include "workload/xmark.h"

namespace uload {
namespace {

struct Totals {
  double total_us = 0;
  int count = 0;
};

Totals RunConfig(const PathSummary& s, const PatternGenOptions& base, int n,
                 int r, uint32_t seed) {
  PatternGenerator gen(&s, seed + n * 17 + r);
  PatternGenOptions opts = base;
  opts.nodes = n;
  opts.return_nodes = r;
  std::vector<Xam> patterns;
  for (int i = 0; i < 25; ++i) patterns.push_back(gen.Generate(opts));
  Totals t;
  ContainmentOptions copts;
  copts.model_limit = 5000;
  for (int i = 0; i < 25; ++i) {
    for (int j = i; j < 25; ++j) {
      auto begin = std::chrono::steady_clock::now();
      auto res = IsContained(patterns[i], patterns[j], s, copts);
      auto end = std::chrono::steady_clock::now();
      if (!res.ok()) continue;
      t.total_us +=
          std::chrono::duration<double, std::micro>(end - begin).count();
      t.count++;
    }
  }
  return t;
}

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  using namespace uload;
  const PathSummary& sd = bench::SharedDblp(2000).summary;
  const PathSummary& sx = bench::SharedXMark(0.5).summary;
  std::printf("DBLP summary: %lld nodes; XMark summary: %lld nodes\n",
              static_cast<long long>(sd.size()),
              static_cast<long long>(sx.size()));

  PatternGenOptions dblp_opts;
  dblp_opts.return_labels = {"author", "title", "year"};
  PatternGenOptions xmark_opts;  // default labels: item/name/keyword

  bench::Header("Fig. 4.15 — DBLP vs XMark synthetic containment (avg us)");
  std::printf("%3s %2s %12s %12s %8s\n", "n", "r", "DBLP us", "XMark us",
              "ratio");
  double grand_d = 0;
  double grand_x = 0;
  for (int r = 1; r <= 3; ++r) {
    for (int n = 3; n <= 13; n += 2) {
      auto d = RunConfig(sd, dblp_opts, n, r, 5309);
      auto x = RunConfig(sx, xmark_opts, n, r, 5309);
      double du = d.count ? d.total_us / d.count : 0;
      double xu = x.count ? x.total_us / x.count : 0;
      grand_d += du;
      grand_x += xu;
      std::printf("%3d %2d %12.1f %12.1f %8.2f\n", n, r, du, xu,
                  du > 0 ? xu / du : 0.0);
    }
  }
  std::printf("\nOverall XMark/DBLP time ratio: %.2f (thesis reports ~4x)\n",
              grand_d > 0 ? grand_x / grand_d : 0.0);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
