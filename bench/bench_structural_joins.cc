// E8 — §1.2.3: stack-based structural join algorithms vs the nested-loop
// baseline. StackTreeDesc/StackTreeAnc are linear in input+output; the
// nested loop is quadratic.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/structural_join.h"
#include "workload/xmark.h"

namespace uload {
namespace {

struct Inputs {
  std::vector<StructuralId> ancestors;
  std::vector<StructuralId> descendants;
};

// Ancestor side: item elements; descendant side: all their keyword
// descendants (both in document order).
Inputs MakeInputs(double scale) {
  const Document& doc = bench::SharedXMark(scale).doc;
  Inputs in;
  for (NodeIndex i = 1; i < doc.size(); ++i) {
    const Node& n = doc.node(i);
    if (!n.is_element()) continue;
    if (n.label == "item") in.ancestors.push_back(n.sid);
    if (n.label == "keyword") in.descendants.push_back(n.sid);
  }
  return in;
}

void BM_StackTreeDesc(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0) / 10.0);
  for (auto _ : state) {
    auto pairs = StackTreeDesc(in.ancestors, in.descendants,
                               Axis::kDescendant);
    benchmark::DoNotOptimize(pairs.size());
  }
  state.counters["anc"] = static_cast<double>(in.ancestors.size());
  state.counters["desc"] = static_cast<double>(in.descendants.size());
}
BENCHMARK(BM_StackTreeDesc)->Arg(2)->Arg(10)->Arg(40);

void BM_StackTreeAnc(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0) / 10.0);
  for (auto _ : state) {
    auto pairs = StackTreeAnc(in.ancestors, in.descendants,
                              Axis::kDescendant);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_StackTreeAnc)->Arg(2)->Arg(10)->Arg(40);

void BM_NestedLoopJoin(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0) / 10.0);
  for (auto _ : state) {
    auto pairs = NestedLoopStructuralJoin(in.ancestors, in.descendants,
                                          Axis::kDescendant);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_NestedLoopJoin)->Arg(2)->Arg(10)->Arg(40);

void BM_ParentChildStackTree(benchmark::State& state) {
  const Document& doc = bench::SharedXMark(1.0).doc;
  std::vector<StructuralId> parents;
  std::vector<StructuralId> children;
  for (NodeIndex i = 1; i < doc.size(); ++i) {
    const Node& n = doc.node(i);
    if (!n.is_element()) continue;
    if (n.label == "person") parents.push_back(n.sid);
    if (n.label == "name") children.push_back(n.sid);
  }
  for (auto _ : state) {
    auto pairs = StackTreeAnc(parents, children, Axis::kChild);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_ParentChildStackTree);

}  // namespace
}  // namespace uload



// --- Pipelined (iterator) vs materialized execution of a join plan ---------

#include "eval/tag_collections.h"
#include "exec/physical.h"

namespace uload {
namespace {

struct PlanFixture {
  const Document& doc;
  NestedRelation people;
  NestedRelation names;
  EvalContext ctx;
  PlanPtr plan;

  explicit PlanFixture(double scale) : doc(bench::SharedXMark(scale).doc) {
    people = TagCollection(doc, "person", {"p", false, false, false});
    names = TagCollection(doc, "name", {"n", false, true, false});
    ctx.relations = {{"people", &people}, {"names", &names}};
    ctx.document = &doc;
    plan = LogicalPlan::StructuralJoin(LogicalPlan::Scan("people"),
                                       LogicalPlan::Scan("names"), "p_ID",
                                       Axis::kChild, "n_ID",
                                       JoinVariant::kInner);
  }
};

void BM_MaterializedJoinPlan(benchmark::State& state) {
  PlanFixture f(state.range(0) / 10.0);
  for (auto _ : state) {
    auto r = Evaluate(*f.plan, f.ctx);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_MaterializedJoinPlan)->Arg(2)->Arg(10);

void BM_PipelinedJoinPlan(benchmark::State& state) {
  PlanFixture f(state.range(0) / 10.0);
  for (auto _ : state) {
    auto r = ExecutePhysicalPlan(f.plan, f.ctx);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_PipelinedJoinPlan)->Arg(2)->Arg(10);

}  // namespace
}  // namespace uload

BENCHMARK_MAIN();
