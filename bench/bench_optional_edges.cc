// E5 — §4.6 ablation: cost of optional edges in containment.
// The thesis: 50% optional edges slow containment by about 2x compared to
// the conjunctive (0%) case — far below the exponential worst case of the
// canonical-model construction.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "containment/containment.h"
#include "workload/pattern_gen.h"
#include "workload/xmark.h"

namespace uload {
namespace {

double AvgPairTime(const PathSummary& s, int optional_percent, int nodes,
                   uint32_t seed) {
  PatternGenerator gen(&s, seed);
  PatternGenOptions opts;
  opts.nodes = nodes;
  opts.return_nodes = 1;
  opts.optional_percent = optional_percent;
  std::vector<Xam> patterns;
  for (int i = 0; i < 30; ++i) patterns.push_back(gen.Generate(opts));
  double total = 0;
  int count = 0;
  ContainmentOptions copts;
  copts.model_limit = 5000;
  for (int i = 0; i < 30; ++i) {
    for (int j = i; j < 30; ++j) {
      auto begin = std::chrono::steady_clock::now();
      auto res = IsContained(patterns[i], patterns[j], s, copts);
      auto end = std::chrono::steady_clock::now();
      if (!res.ok()) continue;
      total += std::chrono::duration<double, std::micro>(end - begin).count();
      count++;
    }
  }
  return count > 0 ? total / count : 0;
}

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  using namespace uload;
  const PathSummary& s = bench::SharedXMark(0.5).summary;
  bench::Header("§4.6 — optional-edge cost in containment (avg us per test)");
  std::printf("%3s %14s %14s %14s %8s\n", "n", "0% optional", "50% optional",
              "100% optional", "50%/0%");
  double sum0 = 0;
  double sum50 = 0;
  for (int n = 4; n <= 12; n += 2) {
    double t0 = AvgPairTime(s, 0, n, 41u + n);
    double t50 = AvgPairTime(s, 50, n, 41u + n);
    double t100 = AvgPairTime(s, 100, n, 41u + n);
    sum0 += t0;
    sum50 += t50;
    std::printf("%3d %14.1f %14.1f %14.1f %8.2f\n", n, t0, t50, t100,
                t0 > 0 ? t50 / t0 : 0.0);
  }
  std::printf(
      "\nOverall 50%%/0%% slowdown: %.2fx (thesis reports ~2x, far from the\n"
      "exponential worst case)\n",
      sum0 > 0 ? sum50 / sum0 : 0.0);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
