// E9 — §3.1/§6.3: the payoff of maximal pattern extraction.
// The Fig. 3.1 query is answered (a) through its two maximal patterns
// (spanning nested FLWR blocks, evaluated with bulk structural joins) and
// (b) by node-at-a-time navigation (the behaviour of XPath-decomposed
// rewritings that must re-navigate for every binding). The thesis argues
// (a) strictly dominates; we measure both.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xquery/interp.h"
#include "xquery/parser.h"
#include "xquery/translate.h"

namespace uload {
namespace {

// A document with the Fig. 3.1 shape at scale.
Document MakeDoc(int groups) {
  Document doc;
  NodeIndex a = doc.AddNode(NodeKind::kElement, "a", "", doc.document_node());
  uint32_t state = 5;
  auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  };
  auto leaf = [&](NodeIndex parent, const std::string& tag,
                  const std::string& text) {
    doc.AddNode(NodeKind::kText, "#text", text,
                doc.AddNode(NodeKind::kElement, tag, "", parent));
  };
  for (int g = 0; g < groups; ++g) {
    NodeIndex x = doc.AddNode(NodeKind::kElement, "x", "", a);
    int cs = next() % 3;
    for (int c = 0; c < cs; ++c) leaf(x, "c", "c" + std::to_string(c));
    NodeIndex b = doc.AddNode(NodeKind::kElement, "b", "", a);
    if (next() % 2 == 0) leaf(b, "e", "e" + std::to_string(g));
    if (next() % 3 != 0) {
      NodeIndex d = doc.AddNode(NodeKind::kElement, "d", "", b);
      int fs = 1 + next() % 3;
      for (int f = 0; f < fs; ++f) {
        NodeIndex fe = doc.AddNode(NodeKind::kElement, "f", "", d);
        leaf(fe, "g", std::to_string(next() % 10));
        leaf(fe, "h", "h" + std::to_string(g) + std::to_string(f));
      }
    }
  }
  doc.Finalize();
  return doc;
}

constexpr const char* kQuery =
    "for $x in doc(\"d\")/a/x, $y in doc(\"d\")//b return "
    "<res1>{$x/c,"
    "<res2>{$y/e,"
    "for $z in $y//d, $t in $z//f where $t/g = 5 "
    "return <res3>{$t/h}</res3>}</res2>}</res1>";

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  using namespace uload;
  bench::Header("§3.1 — maximal patterns vs node-at-a-time evaluation");
  std::printf("%8s %18s %18s %8s\n", "groups", "maximal-pattern us",
              "navigation us", "speedup");
  auto ast = ParseQuery(kQuery);
  if (!ast.ok()) {
    std::printf("parse error: %s\n", ast.status().ToString().c_str());
    return 1;
  }
  auto tr = TranslateQuery(**ast);
  if (!tr.ok()) {
    std::printf("translate error: %s\n", tr.status().ToString().c_str());
    return 1;
  }
  std::printf("(query splits into %zu maximal patterns spanning the nested "
              "blocks)\n",
              tr->patterns.size());
  for (int groups : {20, 60, 120}) {
    Document doc = MakeDoc(groups);
    // Verify once that both strategies agree.
    auto direct = EvaluateQueryDirect(**ast, doc);
    auto algres = EvaluateTranslated(*tr, doc);
    if (!direct.ok() || !algres.ok() || *direct != *algres) {
      std::printf("  MISMATCH at %d groups!\n", groups);
      continue;
    }
    double alg_us = bench::AvgMicros(5, [&] {
      auto r = EvaluateTranslated(*tr, doc);
      benchmark::DoNotOptimize(r.ok());
    });
    double nav_us = bench::AvgMicros(5, [&] {
      auto r = EvaluateQueryDirect(**ast, doc);
      benchmark::DoNotOptimize(r.ok());
    });
    std::printf("%8d %18.1f %18.1f %8.2f\n", groups, alg_us, nav_us,
                nav_us / alg_us);
  }
  std::printf(
      "\nExpected shape (thesis): the two maximal patterns (V10, V11) keep\n"
      "the computation in two bulk pattern evaluations + one product, while\n"
      "navigation re-walks the tree per binding pair.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
