// End-to-end serving-path benchmark: the same rewritten XMark queries
// executed through the legacy materializing path (per-pattern Evaluate +
// explicit sort + pairwise products) and through the unified streaming
// engine (one combined plan through the batched physical executor), swept
// over batch sizes and thread budgets. Prints per-query timings, the
// streaming-vs-legacy speedup, and the EXPLAIN-ANALYZE rendering of the
// most interesting configuration.
//
// Run with --smoke for the CI leg: one iteration over a tiny document.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "exec/memory_tracker.h"
#include "exec/physical.h"
#include "exec/query_control.h"
#include "workload/xmark.h"
#include "xml/serialize.h"

namespace uload {
namespace {

struct QuerySpec {
  const char* name;
  const char* text;
};

const QuerySpec kQueries[] = {
    {"person_names",
     "for $x in doc(\"x\")//people/person return <p>{$x/name/text()}</p>"},
    {"auction_prices",
     "for $x in doc(\"x\")//closed_auction where $x/price > 100 "
     "return <p>{$x/price/text()}</p>"},
    {"item_locations",
     "for $x in doc(\"x\")//item return <l>{$x/location/text()}</l>"},
};

int Run(double scale, int reps) {
  const bench::Workload& w = bench::SharedXMark(scale);
  const Document& doc = w.doc;
  const PathSummary& summary = w.summary;
  Catalog catalog;
  for (NamedXam& v : TagPartitionedModel(summary)) {
    auto st = catalog.AddXam(v.name, std::move(v.xam), doc);
    if (!st.ok()) {
      std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  QueryRewriter qr(&summary, &catalog);

  bench::Header("query end-to-end: legacy materializing vs streaming engine");
  std::printf("xmark scale %.2f, %d rep(s)\n", scale, reps);
  std::printf("%-16s %-22s %12s %10s\n", "query", "config", "micros",
              "vs legacy");

  const size_t kBatchSizes[] = {1, 64, 1024};
  const size_t kThreadBudgets[] = {1, 4};
  // batch=1 is the deliberate anti-pattern config: every per-batch fixed
  // cost (virtual dispatch, accounting, batch allocation) is paid per tuple.
  // The engine's operating point is the default batch capacity.
  const size_t kDefaultBatch = TupleBatch::kDefaultCapacity;
  for (const QuerySpec& q : kQueries) {
    auto r = qr.Rewrite(q.text);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: rewrite: %s\n", q.name,
                   r.status().ToString().c_str());
      return 1;
    }
    std::string legacy_out;
    double legacy = bench::AvgMicros(reps, [&] {
      auto out = qr.ExecuteMaterialized(*r, &doc);
      if (out.ok()) legacy_out = std::move(*out);
    });
    std::printf("%-16s %-22s %12.1f %10s\n", q.name, "legacy", legacy, "1.00x");

    double default_micros = 0;
    for (size_t threads : kThreadBudgets) {
      for (size_t batch : kBatchSizes) {
        ExecContext exec(batch);
        exec.set_thread_budget(threads);
        std::string streaming_out;
        double micros = bench::AvgMicros(reps, [&] {
          exec.ClearMetrics();
          auto out = qr.Execute(*r, &doc, &exec);
          if (out.ok()) streaming_out = std::move(*out);
        });
        if (streaming_out != legacy_out) {
          std::fprintf(stderr, "%s: streaming result diverges from legacy\n",
                       q.name);
          return 1;
        }
        if (batch == kDefaultBatch && threads == 1) default_micros = micros;
        char config[64];
        std::snprintf(config, sizeof(config), "stream b=%zu t=%zu%s", batch,
                      threads,
                      batch == kDefaultBatch && threads == 1 ? " *" : "");
        std::printf("%-16s %-22s %12.1f %9.2fx\n", q.name, config, micros,
                    micros > 0 ? legacy / micros : 0.0);
      }
    }

    // Governor overhead: the starred configuration with the resource
    // governor fully armed — an active deadline checked at every batch
    // boundary plus per-operator memory accounting against a (generous)
    // budget — versus the ungoverned starred row above. At the default
    // batch size the per-batch checks amortize over ~1k tuples, so the
    // delta must stay below run-to-run noise (EXPERIMENTS.md §PR5).
    {
      ExecContext exec(kDefaultBatch);
      exec.set_thread_budget(1);
      auto control = std::make_shared<QueryControl>();
      // Active-but-distant deadline: the comparison is never cheaper than
      // what a real governed query pays.
      control->set_deadline_ns(QueryControl::NowNs() +
                               int64_t{3600} * 1'000'000'000);
      MemoryTracker mem("bench-query", int64_t{4} << 30);
      exec.set_control(control);
      exec.set_memory_tracker(&mem);
      std::string streaming_out;
      double micros = bench::AvgMicros(reps, [&] {
        exec.ClearMetrics();
        auto out = qr.Execute(*r, &doc, &exec);
        if (out.ok()) streaming_out = std::move(*out);
      });
      if (streaming_out != legacy_out) {
        std::fprintf(stderr, "%s: governed result diverges from legacy\n",
                     q.name);
        return 1;
      }
      if (mem.used() != 0) {
        std::fprintf(stderr, "%s: governor leaked %lld bytes\n", q.name,
                     static_cast<long long>(mem.used()));
        return 1;
      }
      std::printf("%-16s %-22s %12.1f %9.2fx (vs * %+5.1f%%)\n", q.name,
                  "stream governed", micros,
                  micros > 0 ? legacy / micros : 0.0,
                  default_micros > 0
                      ? (micros - default_micros) / default_micros * 100.0
                      : 0.0);
    }

    // Verifier overhead: the default configuration with static plan
    // verification (verify/plan_verifier.h) switched off. Verification
    // runs once per query compile, so the delta against the starred row
    // above is the whole cost of verify-before-execute.
    {
      ExecContext exec(kDefaultBatch);
      exec.set_thread_budget(1);
      exec.set_verify_plans(false);
      std::string streaming_out;
      double micros = bench::AvgMicros(reps, [&] {
        exec.ClearMetrics();
        auto out = qr.Execute(*r, &doc, &exec);
        if (out.ok()) streaming_out = std::move(*out);
      });
      if (streaming_out != legacy_out) {
        std::fprintf(stderr, "%s: unverified result diverges from legacy\n",
                     q.name);
        return 1;
      }
      std::printf("%-16s %-22s %12.1f %9.2fx\n", q.name, "stream no-verify",
                  micros, micros > 0 ? legacy / micros : 0.0);
    }
  }
  std::printf("(* = default engine configuration)\n");

  // Backend comparison (E12): the same queries, the same storage model, the
  // same executor — only Options::backend differs. Over the columnar store
  // the simple tag collections run as virtual extents (ColumnarScan_φ /
  // ColumnarParallelScan_φ streaming rows off the column arrays); over the
  // pointer backend they are materialized relations. Results are checked
  // byte-identical before any timing is reported.
  bench::Header("backend comparison: pointer tree vs columnar store");
  std::printf("%-16s %-22s %12s %12s\n", "query", "config", "micros",
              "vs pointer");
  ColumnarDocument col = ColumnarDocument::FromDocument(doc);
  Catalog columnar_catalog;
  for (NamedXam& v : TagPartitionedModel(summary)) {
    auto st = columnar_catalog.AddXam(v.name, std::move(v.xam), col);
    if (!st.ok()) {
      std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  QueryRewriter qr_col(&summary, &columnar_catalog);
  for (const QuerySpec& q : kQueries) {
    // Rewrite once per backend outside the timed region: the comparison is
    // scan/execution throughput, not rewriting.
    auto r_ptr = qr.Rewrite(q.text);
    auto r_col = qr_col.Rewrite(q.text);
    if (!r_ptr.ok() || !r_col.ok()) {
      std::fprintf(stderr, "%s: rewrite failed\n", q.name);
      return 1;
    }
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ExecContext pexec(kDefaultBatch);
      pexec.set_thread_budget(threads);
      ExecContext cexec(kDefaultBatch);
      cexec.set_thread_budget(threads);
      std::string pointer_out;
      std::string columnar_out;
      double pointer_us = bench::AvgMicros(reps, [&] {
        pexec.ClearMetrics();
        auto out = qr.Execute(*r_ptr, &doc, &pexec);
        if (out.ok()) pointer_out = std::move(*out);
      });
      double columnar_us = bench::AvgMicros(reps, [&] {
        cexec.ClearMetrics();
        auto out = qr_col.Execute(*r_col, &col, &cexec);
        if (out.ok()) columnar_out = std::move(*out);
      });
      if (pointer_out != columnar_out || pointer_out.empty()) {
        std::fprintf(stderr, "%s: columnar result diverges from pointer\n",
                     q.name);
        return 1;
      }
      char config[64];
      std::snprintf(config, sizeof(config), "pointer  t=%zu", threads);
      std::printf("%-16s %-22s %12.1f %12s\n", q.name, config, pointer_us,
                  "1.00x");
      std::snprintf(config, sizeof(config), "columnar t=%zu", threads);
      std::printf("%-16s %-22s %12.1f %11.2fx\n", q.name, config, columnar_us,
                  columnar_us > 0 ? pointer_us / columnar_us : 0.0);
    }
  }

  // Raw scan throughput (E12): a bare Scan over large tag views, compiled
  // through the physical executor for both backends. The pointer backend
  // streams copies out of the materialized NestedRelation (Scan_phi /
  // ParallelScan_phi); the columnar backend builds the same tuples on the
  // fly from the column arrays (ColumnarScan_phi / ColumnarParallelScan_phi
  // over the virtual extent) — at thread budget 4 the compiler fans both
  // out over an Exchange. tag_name/tag_location are leaf-tag views (values
  // dictionary-backed → stays virtual); tag_item has element children, so
  // on the columnar backend it falls back to one-time materialization and
  // the two legs converge.
  bench::Header("scan throughput: materialized view vs virtual extent");
  std::printf("%-16s %-22s %12s %12s %14s\n", "view", "config", "micros",
              "vs pointer", "tuples/ms");
  for (const char* view_name : {"tag_name", "tag_location", "tag_item"}) {
    double pointer_base = 0;
    for (size_t threads : {size_t{1}, size_t{4}}) {
      struct Leg {
        const char* label;
        const Catalog* cat;
        const DocumentStore* store;
      } legs[] = {{"pointer", &catalog, &doc},
                  {"columnar", &columnar_catalog, &col}};
      for (const Leg& leg : legs) {
        EvalContext ctx = leg.cat->MakeEvalContext(leg.store);
        ExecContext exec(kDefaultBatch);
        exec.set_thread_budget(threads);
        PlanPtr plan = LogicalPlan::Scan(view_name);
        int64_t tuples = 0;
        bool failed = false;
        double micros = bench::AvgMicros(reps, [&] {
          exec.ClearMetrics();
          tuples = 0;
          auto root = CompilePhysicalPlan(plan, ctx, &exec);
          if (!root.ok() || !(*root)->Open().ok()) {
            failed = true;
            return;
          }
          for (;;) {
            auto b = (*root)->NextBatch();
            if (!b.ok() || !b->has_value()) break;
            tuples += static_cast<int64_t>((*b)->size());
          }
          (*root)->Close();
        });
        if (failed || tuples == 0) {
          std::fprintf(stderr, "%s: scan failed\n", view_name);
          return 1;
        }
        if (threads == 1 && leg.cat == &catalog) pointer_base = micros;
        char config[64];
        std::snprintf(config, sizeof(config), "%-8s t=%zu", leg.label,
                      threads);
        std::printf("%-16s %-22s %12.1f %11.2fx %14.0f\n", view_name, config,
                    micros, micros > 0 ? pointer_base / micros : 0.0,
                    micros > 0 ? tuples / (micros / 1000.0) : 0.0);
      }
    }
  }

  // Cold-start comparison (E12): restoring a Save()d engine (mmap + header
  // validation + summary deserialize) against re-ingesting the document
  // from XML text (parse + summary build).
  {
    bench::Header("cold start: persisted columnar load vs XML re-parse");
    std::string xml = SerializeSubtree(doc, doc.root());
    const std::string path = "/tmp/bench_query_e2e.uldcol";
    Engine::Options co;
    co.backend = Engine::Options::Backend::kColumnar;
    Engine saver(Document(doc), co);
    if (auto st = saver.Save(path); !st.ok()) {
      std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
      return 1;
    }
    int64_t sink = 0;
    double parse_us = bench::AvgMicros(reps, [&] {
      auto d = Document::Parse(xml);
      if (d.ok()) {
        Document parsed = std::move(*d);
        PathSummary s = PathSummary::Build(&parsed);
        sink += s.size();
      }
    });
    double load_us = bench::AvgMicros(reps, [&] {
      auto e = Engine::Load(path);
      if (e.ok()) sink += (*e)->store().size();
    });
    if (sink == 0) {
      std::fprintf(stderr, "cold start: parse or load failed\n");
      return 1;
    }
    std::printf("%-28s %12.1f us\n", "re-parse + summary build", parse_us);
    std::printf("%-28s %12.1f us  (%.1fx faster, %zu-byte XML)\n",
                "Engine::Load (mmap)", load_us,
                load_us > 0 ? parse_us / load_us : 0.0, xml.size());
    std::remove(path.c_str());
  }

  // EXPLAIN ANALYZE of the serving path for the first query.
  Engine::Options o;
  o.thread_budget = 1;
  Engine engine(Document(doc), o);
  auto st = engine.InstallModel(TagPartitionedModel(engine.summary()));
  if (!st.ok()) {
    std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
    return 1;
  }
  auto ex = engine.ExplainAnalyze(kQueries[0].text);
  if (!ex.ok()) {
    std::fprintf(stderr, "explain analyze: %s\n",
                 ex.status().ToString().c_str());
    return 1;
  }
  bench::Header("explain analyze (streaming serving path)");
  std::printf("%s", ex->physical.c_str());
  return 0;
}

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  bool smoke = false;
  double scale = 0;
  int reps = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::atoi(argv[++i]);
  }
  // Default scale yields thousands of matching tuples per query so the
  // measurement reflects execution, not per-query fixed overhead.
  if (scale <= 0) scale = smoke ? 0.02 : 20.0;
  if (reps <= 0) reps = smoke ? 1 : 5;
  return uload::Run(scale, reps);
}
