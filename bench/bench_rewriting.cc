// E6 — §5.6: performance of XAM rewriting.
// Two sweeps: rewriting time as the number of available views grows (the
// view sets come from the path-partitioned XMark storage), and as the query
// pattern grows. The thesis reports moderate growth in both dimensions.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "rewrite/rewriter.h"
#include "workload/pattern_gen.h"
#include "workload/xmark.h"
#include "workload/xmark_queries.h"

namespace uload {
namespace {

const Document* g_doc = nullptr;
const PathSummary* g_summary = nullptr;

void ViewsSweep() {
  std::vector<NamedXam> all_views = PathPartitionedModel(*g_summary);
  std::vector<NamedXam> queries = XMarkQueryPatterns();
  bench::Header("§5.6 — rewriting time vs number of views");
  std::printf("%8s %14s %14s %10s\n", "#views", "avg ms/query", "rewritten",
              "queries");
  for (size_t nviews : {10u, 25u, 50u, 100u, 200u}) {
    if (nviews > all_views.size()) nviews = all_views.size();
    std::vector<NamedXam> views(all_views.begin(),
                                all_views.begin() + nviews);
    Rewriter rewriter(g_summary, views);
    RewriteOptions opts;
    opts.max_results = 1;
    double total_ms = 0;
    int rewritten = 0;
    int total = 0;
    for (const NamedXam& q : queries) {
      ++total;
      auto begin = std::chrono::steady_clock::now();
      auto r = rewriter.Rewrite(q.xam, opts);
      auto end = std::chrono::steady_clock::now();
      total_ms +=
          std::chrono::duration<double, std::milli>(end - begin).count();
      if (r.ok() && !r->empty()) ++rewritten;
    }
    std::printf("%8zu %14.2f %14d %10d\n", nviews, total_ms / total,
                rewritten, total);
    if (nviews == all_views.size()) break;
  }
}

void SizeSweep() {
  std::vector<NamedXam> views = PathPartitionedModel(*g_summary);
  bench::Header("§5.6 — rewriting time vs query pattern size");
  std::printf("%4s %14s %12s\n", "n", "avg ms/query", "rewritten");
  for (int n = 2; n <= 10; n += 2) {
    PatternGenerator gen(g_summary, 777u + n);
    PatternGenOptions popts;
    popts.nodes = n;
    popts.return_nodes = 1;
    popts.optional_percent = 0;  // strict patterns rewrite most often
    popts.predicate_percent = 10;
    Rewriter rewriter(g_summary, views);
    RewriteOptions opts;
    opts.max_results = 1;
    double total_ms = 0;
    int rewritten = 0;
    const int kQueries = 10;
    for (int i = 0; i < kQueries; ++i) {
      Xam q = gen.Generate(popts);
      auto begin = std::chrono::steady_clock::now();
      auto r = rewriter.Rewrite(q, opts);
      auto end = std::chrono::steady_clock::now();
      total_ms +=
          std::chrono::duration<double, std::milli>(end - begin).count();
      if (r.ok() && !r->empty()) ++rewritten;
    }
    std::printf("%4d %14.2f %12d/%d\n", n, total_ms / kQueries, rewritten,
                kQueries);
  }
  std::printf(
      "\nExpected shape (thesis): rewriting time grows moderately with both\n"
      "the view count and the query size; most queries find rewritings over\n"
      "the path-partitioned store.\n");
}

void BM_RewriteQ1(benchmark::State& state) {
  std::vector<NamedXam> views = PathPartitionedModel(*g_summary);
  Rewriter rewriter(g_summary, views);
  Xam q = XMarkQueryPatterns()[0].xam;
  RewriteOptions opts;
  opts.max_results = 1;
  for (auto _ : state) {
    auto r = rewriter.Rewrite(q, opts);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_RewriteQ1);

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  const uload::bench::Workload& w = uload::bench::SharedXMark(0.3);
  uload::g_doc = &w.doc;
  uload::g_summary = &w.summary;
  std::printf("XMark summary: %lld nodes\n",
              static_cast<long long>(w.summary.size()));
  uload::ViewsSweep();
  uload::SizeSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
