// E7 — Chapter 2's motivation: the same query over different storage
// models. The optimizer only sees the XAM set; the resulting plans (QEP1 /
// QEP6 / QEP7 / QEP9 / QEP11 analogues) differ in shape and cost:
//  * inlined shredding answers q from one relation;
//  * tag partitioning needs structural joins;
//  * path partitioning needs structural joins but touches less data;
//  * non-fragmented (blob) storage answers content queries without joins;
//  * a composite-key index answers the selective query by a lookup.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "eval/xam_eval.h"
#include "rewrite/rewriter.h"
#include "storage/catalog.h"
#include "storage/columnar/columnar_document.h"
#include "xam/xam_parser.h"
#include "xml/document.h"

namespace uload {
namespace {

// A bib-style document: books with one title/year and 1-3 authors, plus
// document-centric sections inside each book body (for q').
Document MakeBib(int books) {
  Document doc;
  NodeIndex bib = doc.AddNode(NodeKind::kElement, "bib", "",
                              doc.document_node());
  uint32_t state = 99;
  auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  };
  auto leaf = [&](NodeIndex parent, const std::string& tag,
                  const std::string& text) {
    doc.AddNode(NodeKind::kText, "#text", text,
                doc.AddNode(NodeKind::kElement, tag, "", parent));
  };
  for (int i = 0; i < books; ++i) {
    NodeIndex book = doc.AddNode(NodeKind::kElement, "book", "", bib);
    leaf(book, "title", "Book number " + std::to_string(i));
    leaf(book, "year", std::to_string(1990 + static_cast<int>(next() % 20)));
    int authors = 1 + next() % 3;
    for (int a = 0; a < authors; ++a) {
      leaf(book, "author", "Author " + std::to_string(next() % 50));
    }
    NodeIndex body = doc.AddNode(NodeKind::kElement, "body", "", book);
    int sections = 1 + next() % 4;
    for (int s = 0; s < sections; ++s) {
      NodeIndex section = doc.AddNode(NodeKind::kElement, "section", "", body);
      doc.AddNode(NodeKind::kAttribute, "no", std::to_string(s + 1), section);
      doc.AddNode(NodeKind::kText, "#text", "In this section we discuss ",
                  section);
      leaf(section, "it", "Web");
      doc.AddNode(NodeKind::kText, "#text", " data in ", section);
      leaf(section, "b", "XML");
      doc.AddNode(NodeKind::kText, "#text", " documents.", section);
    }
  }
  doc.Finalize();
  return doc;
}

Xam Parse(const char* text) {
  auto x = ParseXam(text);
  return x.ok() ? std::move(x).value() : Xam();
}

struct ModelRun {
  const char* name;
  std::vector<NamedXam> views;
};

void RunQuery(const char* label, const Xam& q, const ModelRun& model,
              const Document& doc, const PathSummary& summary) {
  Catalog catalog;
  for (const NamedXam& v : model.views) {
    auto st = catalog.AddXam(v.name, v.xam, doc);
    if (!st.ok()) {
      std::printf("  %-18s view error: %s\n", model.name,
                  st.ToString().c_str());
      return;
    }
  }
  std::vector<NamedXam> defs;
  for (const auto& v : catalog.views()) {
    defs.push_back({v->name(), v->definition()});
  }
  Rewriter rewriter(&summary, defs);
  RewriteOptions opts;
  opts.max_results = 1;
  auto t0 = std::chrono::steady_clock::now();
  auto r = rewriter.RewriteBest(q, opts);
  auto t1 = std::chrono::steady_clock::now();
  if (!r.ok()) {
    std::printf("  %-18s %-10s no rewriting (%s)\n", model.name, label,
                r.status().ToString().c_str());
    return;
  }
  EvalContext ctx = catalog.MakeEvalContext(&doc);
  int64_t rows = 0;
  double exec_us = bench::AvgMicros(5, [&] {
    auto res = Evaluate(*r->plan, ctx);
    if (res.ok()) rows = res->size();
  });
  std::printf("  %-18s %-10s ops=%-3d views=%zu  rewrite=%6.1f us  "
              "exec=%8.1f us  rows=%lld  bytes=%lld\n",
              model.name, label, r->operator_count, r->views_used.size(),
              std::chrono::duration<double, std::micro>(t1 - t0).count(),
              exec_us, static_cast<long long>(rows),
              static_cast<long long>(catalog.TotalBytes()));
}

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  using namespace uload;
  Document doc = MakeBib(800);
  PathSummary summary = PathSummary::Build(&doc);
  std::printf("bib document: %lld elements, summary %lld nodes\n",
              static_cast<long long>(doc.element_count()),
              static_cast<long long>(summary.size()));

  // q: every book with its authors and title values (thesis §2.1.1 —
  // QEP1 returns authorValue/titleValue; node identity is not needed).
  Xam q = Parse(
      "xam\nnode e1 label=book\nnode e2 label=author val\n"
      "node e3 label=title val\n"
      "edge top // j e1\nedge e1 / j e2\nedge e1 / j e3\n");
  // q': book sections with their content (document-centric, §2.1.1).
  Xam qprime = Parse(
      "xam\nnode e1 label=book\nnode e2 label=section id=s cont\n"
      "edge top // j e1\nedge e1 // j e2\n");
  // q'': selective author lookup by year (thesis §2.1.2, QEP10/QEP11).
  Xam qsel = Parse(
      "xam\nnode e1 label=book\nnode e2 label=year val=\"1999\"\n"
      "node e3 label=author val\n"
      "edge top // j e1\nedge e1 / s e2\nedge e1 / j e3\n");

  std::vector<ModelRun> models;
  models.push_back({"inlined(Hybrid)", InlinedShreddingModel(summary)});
  models.push_back({"tag-partitioned", TagPartitionedModel(summary)});
  models.push_back({"path-partitioned", PathPartitionedModel(summary)});
  {
    // Blob storage for sections plus books for q'.
    std::vector<NamedXam> blob = TagPartitionedModel(summary);
    blob.push_back(NonFragmentedStore("section"));
    models.push_back({"blob(sections)", std::move(blob)});
  }
  {
    // Tag partitioning plus the booksByYearTitle-style index: q'' should
    // turn into an index lookup (QEP11).
    std::vector<NamedXam> indexed = TagPartitionedModel(summary);
    indexed.push_back(ValueIndex("book", {"year"}));
    models.push_back({"tag+year-index", std::move(indexed)});
  }

  bench::Header("q — //book with author and title values");
  for (const auto& m : models) RunQuery("q", q, m, doc, summary);

  bench::Header("q' — //book//section content (fragmented vs blob)");
  for (const auto& m : models) RunQuery("q'", qprime, m, doc, summary);

  bench::Header("q'' — selective year/title query");
  for (const auto& m : models) RunQuery("q''", qsel, m, doc, summary);

  // Storage footprint per backend (E12): the same XAM set installed over
  // the pointer tree (every view a materialized NestedRelation) and over
  // the column store (qualifying views virtualized down to a delta+varint
  // row-id list). data/index bytes come from the views themselves; the
  // columnar document's own columns+dictionaries+chunk index are shared by
  // all its views and reported once.
  bench::Header("storage footprint: materialized views vs virtual extents");
  ColumnarDocument col = ColumnarDocument::FromDocument(doc);
  auto cb = col.ApproximateBytesBreakdown();
  std::printf("columnar store: columns=%lld dict=%lld chunk-index=%lld "
              "(document %lld bytes as pointer tree)\n",
              static_cast<long long>(cb.column_bytes),
              static_cast<long long>(cb.dict_bytes),
              static_cast<long long>(cb.chunk_index_bytes),
              static_cast<long long>(doc.ApproximateBytes()));
  std::printf("  %-18s %-9s %10s %10s %10s %12s\n", "model", "backend",
              "data", "index", "rowsets", "virtualized");
  for (const auto& m : models) {
    struct Leg {
      const char* name;
      const DocumentStore* store;
    } legs[] = {{"pointer", &doc}, {"columnar", &col}};
    for (const Leg& leg : legs) {
      Catalog catalog;
      bool ok = true;
      for (const NamedXam& v : m.views) {
        if (!catalog.AddXam(v.name, v.xam, *leg.store).ok()) ok = false;
      }
      if (!ok) continue;
      MaterializedView::StorageBytes total;
      int virtualized = 0;
      for (const auto& view : catalog.views()) {
        auto b = view->ApproximateBytesBreakdown();
        total.data_bytes += b.data_bytes;
        total.index_bytes += b.index_bytes;
        total.rowset_bytes += b.rowset_bytes;
        if (b.virtualized) ++virtualized;
      }
      std::printf("  %-18s %-9s %10lld %10lld %10lld %9d/%zu\n", m.name,
                  leg.name, static_cast<long long>(total.data_bytes),
                  static_cast<long long>(total.index_bytes),
                  static_cast<long long>(total.rowset_bytes), virtualized,
                  catalog.views().size());
    }
  }

  std::printf(
      "\nExpected shape (thesis Ch.2): the inlined store answers q with the\n"
      "fewest operators; tag/path partitioning require structural joins;\n"
      "the blob store answers q' without reassembling sections.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
