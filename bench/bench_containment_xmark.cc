// E2/E3 — Fig. 4.14: XAM containment under the XMark summary.
//  (top)    the 20 XMark query patterns: canonical-model size and
//           self-containment time;
//  (bottom) random satisfiable patterns of 3..13 nodes with r ∈ {1,2,3}
//           return nodes, 40 patterns per configuration, all ordered pairs
//           tested — average time reported separately for positive and
//           negative outcomes (the thesis: negatives are faster because the
//           algorithm exits at the first contradicting canonical tree).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "containment/containment.h"
#include "workload/pattern_gen.h"
#include "workload/xmark.h"
#include "workload/xmark_queries.h"

namespace uload {
namespace {

const PathSummary* g_summary = nullptr;

void XMarkQueryTable() {
  bench::Header("Fig. 4.14 (top) — XMark query patterns, p ⊆_S p");
  std::printf("%-6s %6s %12s %14s\n", "query", "|p|", "|mod_S(p)|",
              "time (us)");
  ContainmentOptions copts;
  copts.model_limit = 5000;
  for (const NamedXam& q : XMarkQueryPatterns()) {
    ContainmentStats stats;
    auto warm = IsContained(q.xam, q.xam, *g_summary, copts, &stats);
    if (!warm.ok() || !*warm) {
      std::printf("%-6s  containment unexpectedly failed: %s\n",
                  q.name.c_str(), warm.status().ToString().c_str());
      continue;
    }
    int reps = stats.canonical_model_size > 100 ? 3 : 20;
    double us = bench::AvgMicros(reps, [&] {
      auto r = IsContained(q.xam, q.xam, *g_summary, copts);
      benchmark::DoNotOptimize(r.ok());
    });
    std::printf("%-6s %6d %12zu %14.1f\n", q.name.c_str(), q.xam.size() - 1,
                stats.canonical_model_size, us);
  }
}

struct PairStats {
  double pos_us = 0;
  double neg_us = 0;
  int pos = 0;
  int neg = 0;
};

PairStats RunPairs(const PathSummary& s, int nodes, int r, int count,
                   int optional_percent, uint32_t seed_base) {
  PatternGenerator gen(&s, seed_base + nodes * 131 + r);
  PatternGenOptions opts;
  opts.nodes = nodes;
  opts.return_nodes = r;
  opts.optional_percent = optional_percent;
  std::vector<Xam> patterns;
  for (int i = 0; i < count; ++i) patterns.push_back(gen.Generate(opts));
  PairStats st;
  ContainmentOptions copts;
  copts.model_limit = 5000;
  for (int i = 0; i < count; ++i) {
    for (int j = i; j < count; ++j) {
      auto begin = std::chrono::steady_clock::now();
      auto res = IsContained(patterns[i], patterns[j], s, copts);
      auto end = std::chrono::steady_clock::now();
      if (!res.ok()) continue;
      double us =
          std::chrono::duration<double, std::micro>(end - begin).count();
      if (*res) {
        st.pos_us += us;
        st.pos++;
      } else {
        st.neg_us += us;
        st.neg++;
      }
    }
  }
  if (st.pos > 0) st.pos_us /= st.pos;
  if (st.neg > 0) st.neg_us /= st.neg;
  return st;
}

void SyntheticTable() {
  bench::Header(
      "Fig. 4.14 (bottom) — synthetic pattern containment on XMark "
      "(25 patterns per config, all ordered pairs, model cap 5000)");
  std::printf("%3s %2s %10s %6s %10s %6s\n", "n", "r", "pos us", "#pos",
              "neg us", "#neg");
  for (int r = 1; r <= 3; ++r) {
    for (int n = 3; n <= 13; n += 2) {
      PairStats st = RunPairs(*g_summary, n, r, 25, 50, 977);
      std::printf("%3d %2d %10.1f %6d %10.1f %6d\n", n, r, st.pos_us, st.pos,
                  st.neg_us, st.neg);
    }
  }
  std::printf(
      "\nExpected shape (thesis): positive tests are slower than negative\n"
      "ones; time grows moderately with pattern size; canonical models stay\n"
      "far below the |S|^|p| worst case.\n");
}

void BM_SelfContainment(benchmark::State& state) {
  std::vector<NamedXam> queries = XMarkQueryPatterns();
  const Xam& q = queries[static_cast<size_t>(state.range(0))].xam;
  ContainmentOptions copts;
  copts.model_limit = 5000;
  for (auto _ : state) {
    auto r = IsContained(q, q, *g_summary, copts);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SelfContainment)->Arg(0)->Arg(6)->Arg(14)->Arg(19);

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  const uload::PathSummary& summary = uload::bench::SharedXMark(0.5).summary;
  uload::g_summary = &summary;
  std::printf("XMark summary: %lld nodes\n",
              static_cast<long long>(summary.size()));
  uload::XMarkQueryTable();
  uload::SyntheticTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
