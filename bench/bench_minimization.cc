// E10 — §4.5: tree pattern minimization under summary constraints.
// Measures S-contraction minimization time and the achieved size reduction
// over random satisfiable patterns, plus the global (chain-search) variant
// for single-return patterns.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "containment/minimize.h"
#include "workload/pattern_gen.h"
#include "workload/xmark.h"

namespace uload {
namespace {

void Sweep(const PathSummary& summary) {
  bench::Header("§4.5 — S-contraction minimization of random patterns");
  std::printf("%4s %10s %10s %12s %10s\n", "n", "avg size", "min size",
              "avg ms", "#minima");
  for (int n = 4; n <= 12; n += 2) {
    PatternGenerator gen(&summary, 4242u + n);
    PatternGenOptions opts;
    opts.nodes = n;
    opts.return_nodes = 1;
    opts.optional_percent = 0;
    double total_in = 0;
    double total_out = 0;
    double total_ms = 0;
    double total_minima = 0;
    const int kPatterns = 12;
    int ok = 0;
    for (int i = 0; i < kPatterns; ++i) {
      Xam p = gen.Generate(opts);
      auto begin = std::chrono::steady_clock::now();
      auto minima = MinimizeByContraction(p, summary);
      auto end = std::chrono::steady_clock::now();
      if (!minima.ok() || minima->empty()) continue;
      ++ok;
      total_in += p.size();
      int best = p.size();
      for (const Xam& m : *minima) best = std::min(best, m.size());
      total_out += best;
      total_minima += static_cast<double>(minima->size());
      total_ms +=
          std::chrono::duration<double, std::milli>(end - begin).count();
    }
    if (ok == 0) continue;
    std::printf("%4d %10.1f %10.1f %12.2f %10.1f\n", n, total_in / ok,
                total_out / ok, total_ms / ok, total_minima / ok);
  }
  std::printf(
      "\nExpected shape (thesis): summaries erase many redundant pattern\n"
      "nodes; several distinct minima can coexist (Fig. 4.12).\n");
}

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  uload::Sweep(uload::bench::SharedXMark(0.3).summary);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
