// E1 — Fig. 4.13: document and summary statistics across data sets.
// Reports serialized size, element count N, summary size |S| and the
// strong/one-to-one edge counts n_s (n_1); then times summary construction
// with google-benchmark.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "summary/path_summary.h"
#include "workload/dataset_gen.h"
#include "workload/dblp.h"
#include "workload/xmark.h"

namespace uload {
namespace {

void Row(const char* name, Document doc) {
  PathSummary s = PathSummary::Build(&doc);
  std::printf("%-14s %10.2f MB %10lld %6lld %8lld (%lld)\n", name,
              doc.SerializedSize() / 1048576.0,
              static_cast<long long>(doc.element_count()),
              static_cast<long long>(s.size()),
              static_cast<long long>(s.strong_edge_count()),
              static_cast<long long>(s.one_to_one_edge_count()));
}

void PrintTable() {
  bench::Header("Fig. 4.13 — documents and their summaries");
  std::printf("%-14s %13s %10s %6s %14s\n", "Doc", "Size", "N", "|S|",
              "n_s (n_1)");
  Row("Shakespeare", GenerateShakespeareLike(8));
  Row("Nasa", GenerateNasaLike(300));
  Row("SwissProt", GenerateSwissProtLike(800));
  Row("XMark-S", GenerateXMark(XMarkScale(0.3)));
  Row("XMark-M", GenerateXMark(XMarkScale(1.0)));
  Row("XMark-L", GenerateXMark(XMarkScale(3.0)));
  Row("DBLP-S", GenerateDblp({1500, 7}));
  Row("DBLP-L", GenerateDblp({5000, 7}));
  std::printf(
      "\nExpected shape (thesis): summaries are small and grow little as\n"
      "documents grow; strong/one-to-one edges are frequent.\n");
}

void BM_BuildSummaryXMark(benchmark::State& state) {
  Document doc = GenerateXMark(XMarkScale(state.range(0) / 10.0));
  for (auto _ : state) {
    Document copy = doc;
    PathSummary s = PathSummary::Build(&copy);
    benchmark::DoNotOptimize(s.size());
  }
  state.counters["elements"] = static_cast<double>(doc.element_count());
}
BENCHMARK(BM_BuildSummaryXMark)->Arg(2)->Arg(10)->Arg(30);

void BM_BuildSummaryDblp(benchmark::State& state) {
  Document doc = GenerateDblp({static_cast<int>(state.range(0)), 7});
  for (auto _ : state) {
    Document copy = doc;
    PathSummary s = PathSummary::Build(&copy);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_BuildSummaryDblp)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  uload::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
