// Closed-loop multi-client throughput bench for the query service
// (src/server/): N client threads, each with its own connection/session,
// issue queries back to back against one loopback QueryServer and record
// per-request wall-clock latency. Sweeps {clients} x {thread_budget} and
// prints QPS / p50 / p99 per cell. Every wire answer is verified
// byte-identical to the in-process Engine::Run answer — a mismatch fails
// the bench (exit 1), which is the acceptance bar for the serving path.
//
//   bench_server_throughput [--scale S] [--iters N] [--smoke]
//
// --smoke: tiny document, few iterations, same full sweep — the CI leg.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/storage_models.h"

namespace uload {
namespace {

const char* kQueries[] = {
    "for $x in doc(\"x\")//people/person return <p>{$x/name/text()}</p>",
    "for $x in doc(\"x\")//item return <l>{$x/location/text()}</l>",
    "for $x in doc(\"x\")//closed_auction where $x/price > 100 "
    "return <p>{$x/price/text()}</p>",
};

struct CellResult {
  int64_t requests = 0;
  double wall_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double qps() const { return wall_s > 0 ? requests / wall_s : 0; }
};

double PercentileMs(std::vector<int64_t>& ns, double p) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  size_t idx = static_cast<size_t>(p * (ns.size() - 1) + 0.5);
  idx = std::min(idx, ns.size() - 1);
  return static_cast<double>(ns[idx]) / 1e6;
}

int RunBench(double scale, int iters) {
  using Clock = std::chrono::steady_clock;
  const bench::Workload& w = bench::SharedXMark(scale);

  Engine::Options options;
  Engine engine(Document(w.doc), options);  // copy: the cache is shared
  auto install = engine.InstallModel(TagPartitionedModel(engine.summary()));
  if (!install.ok()) {
    std::fprintf(stderr, "install: %s\n", install.ToString().c_str());
    return 1;
  }

  // In-process expected answers (the differential bar).
  std::vector<std::string> expected;
  for (const char* q : kQueries) {
    auto r = engine.Run(q);
    if (!r.ok()) {
      std::fprintf(stderr, "baseline %s: %s\n", q,
                   r.status().ToString().c_str());
      return 1;
    }
    expected.push_back(std::move(*r));
  }

  // Admission sized above the largest client count: this bench measures the
  // serving path, not deliberate load shedding.
  ServerConfig config;
  config.admission.max_concurrent = 32;
  config.admission.max_queued = 64;
  QueryServer server(&engine, config);
  auto st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }

  bench::Header("query service: closed-loop client sweep");
  std::printf("xmark scale %.2f, %d iters/client, %zu queries round-robin\n",
              scale, iters, std::size(kQueries));
  std::printf("%8s %14s %10s %12s %10s %10s\n", "clients", "thread_budget",
              "requests", "qps", "p50_ms", "p99_ms");

  const int kClients[] = {1, 4, 16};
  const int64_t kThreadBudgets[] = {1, 4};
  std::atomic<int64_t> mismatches{0};

  for (int clients : kClients) {
    for (int64_t budget : kThreadBudgets) {
      std::vector<std::vector<int64_t>> latencies(
          static_cast<size_t>(clients));
      std::vector<std::thread> threads;
      std::atomic<int> errors{0};
      auto wall_start = Clock::now();
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          auto client = QueryClient::Connect("127.0.0.1", server.port());
          if (!client.ok()) {
            errors.fetch_add(1);
            return;
          }
          if (!client->Set("thread_budget", budget).ok()) {
            errors.fetch_add(1);
            return;
          }
          auto& lats = latencies[static_cast<size_t>(c)];
          lats.reserve(static_cast<size_t>(iters));
          for (int i = 0; i < iters; ++i) {
            size_t qi = static_cast<size_t>(c + i) % std::size(kQueries);
            auto t0 = Clock::now();
            auto r = client->Run(kQueries[qi]);
            auto t1 = Clock::now();
            if (!r.ok()) {
              errors.fetch_add(1);
              return;
            }
            if (*r != expected[qi]) mismatches.fetch_add(1);
            lats.push_back(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count());
          }
          client->Goodbye();
        });
      }
      for (auto& th : threads) th.join();
      double wall_s = std::chrono::duration<double>(Clock::now() - wall_start)
                          .count();
      if (errors.load() > 0) {
        std::fprintf(stderr, "cell clients=%d budget=%lld: %d client errors\n",
                     clients, static_cast<long long>(budget), errors.load());
        return 1;
      }
      std::vector<int64_t> all;
      for (auto& lats : latencies) {
        all.insert(all.end(), lats.begin(), lats.end());
      }
      CellResult cell;
      cell.requests = static_cast<int64_t>(all.size());
      cell.wall_s = wall_s;
      cell.p50_ms = PercentileMs(all, 0.50);
      cell.p99_ms = PercentileMs(all, 0.99);
      std::printf("%8d %14lld %10lld %12.1f %10.3f %10.3f\n", clients,
                  static_cast<long long>(budget),
                  static_cast<long long>(cell.requests), cell.qps(),
                  cell.p50_ms, cell.p99_ms);
      std::fflush(stdout);
    }
  }
  server.Stop();

  auto stats = server.stats();
  std::printf("\nserver: %lld ok, %lld errors, %lld sessions, "
              "%lld admitted, %lld shed\n",
              static_cast<long long>(stats.queries_ok),
              static_cast<long long>(stats.queries_error),
              static_cast<long long>(stats.sessions_opened),
              static_cast<long long>(stats.admission.admitted),
              static_cast<long long>(stats.admission.shed_queue_full +
                                     stats.admission.shed_queue_timeout +
                                     stats.admission.shed_memory +
                                     stats.admission.shed_draining));
  if (mismatches.load() > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld wire answers differed from in-process runs\n",
                 static_cast<long long>(mismatches.load()));
    return 1;
  }
  std::printf("all wire answers byte-identical to in-process runs\n");
  return 0;
}

}  // namespace
}  // namespace uload

int main(int argc, char** argv) {
  double scale = 0.1;
  int iters = 30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = 0.02;
      iters = 4;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--scale S] [--iters N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  return uload::RunBench(scale, iters);
}
