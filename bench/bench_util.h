// Shared helpers for the reproduction benchmarks: wall-clock timing of
// callables and aligned table printing (the thesis reports tables and
// curves; we print both the rows and summary statistics).
#ifndef ULOAD_BENCH_BENCH_UTIL_H_
#define ULOAD_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace uload::bench {

// Microseconds for one invocation, averaged over `reps` runs.
template <typename Fn>
double AvgMicros(int reps, const Fn& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         reps;
}

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace uload::bench

#endif  // ULOAD_BENCH_BENCH_UTIL_H_
