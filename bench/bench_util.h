// Shared helpers for the reproduction benchmarks: wall-clock timing of
// callables and aligned table printing (the thesis reports tables and
// curves; we print both the rows and summary statistics).
#ifndef ULOAD_BENCH_BENCH_UTIL_H_
#define ULOAD_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "summary/path_summary.h"
#include "workload/dblp.h"
#include "workload/xmark.h"

namespace uload::bench {

// Microseconds for one invocation, averaged over `reps` runs.
template <typename Fn>
double AvgMicros(int reps, const Fn& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         reps;
}

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Process-wide workload cache: every (generator, parameter) document is
// built — and summary-annotated — at most once per benchmark process, no
// matter how many benchmark families or google-benchmark arguments touch
// it. Generating XMark at scale 1+ costs seconds; before this cache each
// family rebuilt its own copy of the same document. Cached workloads are
// shared read-only; benchmarks that need to mutate a document (or hand one
// to an Engine) must take a copy.
struct Workload {
  Document doc;  // path_id-annotated by the summary build
  PathSummary summary;
};

inline const Workload& SharedXMark(double scale) {
  static auto* cache = new std::map<int64_t, Workload>();
  int64_t key = static_cast<int64_t>(scale * 1000 + 0.5);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, Workload()).first;
    it->second.doc = GenerateXMark(XMarkScale(scale));
    it->second.summary = PathSummary::Build(&it->second.doc);
  }
  return it->second;
}

inline const Workload& SharedDblp(int records, uint32_t seed = 7) {
  static auto* cache = new std::map<std::pair<int, uint32_t>, Workload>();
  auto it = cache->find({records, seed});
  if (it == cache->end()) {
    it = cache->emplace(std::make_pair(records, seed), Workload()).first;
    it->second.doc = GenerateDblp({records, seed});
    it->second.summary = PathSummary::Build(&it->second.doc);
  }
  return it->second;
}

}  // namespace uload::bench

#endif  // ULOAD_BENCH_BENCH_UTIL_H_
