// Tuple-at-a-time vs batch-at-a-time execution of a structural-join
// pipeline. Batch size 1 degenerates to the classic Open/Next/Close iterator
// model (every NextBatch() call moves one tuple, paying dispatch and
// accounting per tuple); larger batches amortize those costs. The run prints
// throughput per batch size, the 1024-vs-1 speedup, and the EXPLAIN-ANALYZE
// rendering of the executed pipeline.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "eval/tag_collections.h"
#include "exec/physical.h"
#include "workload/xmark.h"

namespace uload {
namespace {

struct Pipeline {
  const Document& doc;
  NestedRelation people;
  NestedRelation names;
  NestedRelation emails;
  EvalContext ctx;
  PlanPtr plan;

  explicit Pipeline(double scale) : doc(bench::SharedXMark(scale).doc) {
    people = TagCollection(doc, "person", {"p", false, false, false});
    names = TagCollection(doc, "name", {"n", false, true, false});
    emails = TagCollection(doc, "emailaddress", {"e", false, true, false});
    ctx.relations = {
        {"people", &people}, {"names", &names}, {"emails", &emails}};
    ctx.document = &doc;
    // Two piped structural joins: person parent-of name, then the pairs
    // joined against emailaddress. The outer join's left input arrives
    // ordered on n_ID, so the compiler inserts a Sort_φ enforcer on p_ID —
    // the thesis's structural-join piping at work.
    PlanPtr inner = LogicalPlan::StructuralJoin(
        LogicalPlan::Scan("people"), LogicalPlan::Scan("names"), "p_ID",
        Axis::kChild, "n_ID", JoinVariant::kInner);
    plan = LogicalPlan::StructuralJoin(std::move(inner),
                                       LogicalPlan::Scan("emails"), "p_ID",
                                       Axis::kChild, "e_ID",
                                       JoinVariant::kInner);
  }
};

struct Measurement {
  size_t batch_size;
  double micros;        // one execution, averaged
  int64_t out_tuples;   // result cardinality
  double tuples_per_s;  // result tuples per second
};

Measurement Measure(const Pipeline& p, size_t batch_size, int reps) {
  ExecContext exec(batch_size);
  auto root = CompilePhysicalPlan(p.plan, p.ctx, &exec);
  if (!root.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 root.status().ToString().c_str());
    return {batch_size, 0, 0, 0};
  }
  int64_t out = 0;
  double us = bench::AvgMicros(reps, [&] {
    auto rel = ExecutePhysical(root->get());
    out = rel.ok() ? (*rel).size() : -1;
  });
  return {batch_size, us, out,
          us > 0 ? static_cast<double>(out) / (us / 1e6) : 0};
}

void Run(double scale, int reps) {
  Pipeline p(scale);
  std::printf("scale=%.2f  people=%lld names=%lld emails=%lld\n", scale,
              static_cast<long long>(p.people.size()),
              static_cast<long long>(p.names.size()),
              static_cast<long long>(p.emails.size()));
  std::printf("%-12s %12s %12s %16s %10s\n", "batch_size", "micros/run",
              "out_tuples", "tuples/sec", "speedup");
  Measurement base{};
  for (size_t bs : {size_t{1}, size_t{4}, size_t{32}, size_t{256},
                    size_t{1024}}) {
    Measurement m = Measure(p, bs, reps);
    if (bs == 1) base = m;
    std::printf("%-12zu %12.1f %12lld %16.0f %9.2fx\n", m.batch_size,
                m.micros, static_cast<long long>(m.out_tuples), m.tuples_per_s,
                base.micros > 0 ? base.micros / m.micros : 0.0);
  }
  Measurement batched = Measure(p, TupleBatch::kDefaultCapacity, reps);
  std::printf("\nbatch=1024 vs batch=1 tuple-throughput: %.2fx\n",
              base.tuples_per_s > 0 ? batched.tuples_per_s / base.tuples_per_s
                                    : 0.0);
}

// Parallel variant: one structural join (person ancestor-of name) compiled
// with increasing thread budgets. At budget >= 2 the compiler partitions the
// descendant scan across workers and re-merges under an ExchangeMerge_φ, so
// output stays byte-identical to the serial plan while the join itself runs
// on all workers.
void RunParallel(double scale, int reps) {
  Pipeline p(scale);
  PlanPtr join = LogicalPlan::StructuralJoin(
      LogicalPlan::Scan("people"), LogicalPlan::Scan("names"), "p_ID",
      Axis::kDescendant, "n_ID", JoinVariant::kInner);
  std::printf("\nparallel exchange sweep (scale=%.2f, hardware threads=%u)\n",
              scale, std::thread::hardware_concurrency());
  std::printf("%-14s %12s %12s %16s %10s\n", "thread_budget", "micros/run",
              "out_tuples", "tuples/sec", "speedup");
  double base_us = 0;
  for (size_t budget : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ExecContext exec;
    exec.set_thread_budget(budget);
    auto root = CompilePhysicalPlan(join, p.ctx, &exec);
    if (!root.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   root.status().ToString().c_str());
      return;
    }
    int64_t out = 0;
    double us = bench::AvgMicros(reps, [&] {
      auto rel = ExecutePhysical(root->get());
      out = rel.ok() ? (*rel).size() : -1;
    });
    if (budget == 1) base_us = us;
    std::printf("%-14zu %12.1f %12lld %16.0f %9.2fx\n", budget, us,
                static_cast<long long>(out),
                us > 0 ? static_cast<double>(out) / (us / 1e6) : 0.0,
                base_us > 0 && us > 0 ? base_us / us : 0.0);
  }
}

void ShowAnalyze(double scale) {
  Pipeline p(scale);
  ExecContext exec;
  auto root = CompilePhysicalPlan(p.plan, p.ctx, &exec);
  if (!root.ok()) return;
  auto rel = ExecutePhysical(root->get());
  if (!rel.ok()) return;
  std::printf("\nEXPLAIN ANALYZE (batch=%zu, %lld result tuples):\n%s",
              exec.batch_size(), static_cast<long long>((*rel).size()),
              (*root)->DescribeAnalyze().c_str());
}

}  // namespace
}  // namespace uload

int main() {
  uload::bench::Header("E-exec: batch-at-a-time structural-join pipeline");
  uload::Run(/*scale=*/0.5, /*reps=*/5);
  uload::Run(/*scale=*/2.0, /*reps=*/3);
  uload::RunParallel(/*scale=*/50.0, /*reps=*/3);
  uload::ShowAnalyze(/*scale=*/0.5);
  return 0;
}
